// Bad twin for rule hot-cold-call: the SCAP_HOT ingest path calls into a
// function explicitly annotated SCAP_COLD. Cold functions are traversal
// barriers — the edge itself is the finding, and crossing it needs an
// explicit amortization waiver, never silence.
#if defined(__clang__)
#define SCAP_HOT [[clang::annotate("scap_hot")]]
#define SCAP_COLD [[clang::annotate("scap_cold")]]
#else
#define SCAP_HOT
#define SCAP_COLD
#endif

namespace scap::kernel {

class Engine {
 public:
  SCAP_HOT void handle_packet(unsigned long now) {
    if (now - last_maintenance_ > 1000) {
      run_maintenance(now);  // expect-chain: hot-cold-call: kernel::Engine::handle_packet -> kernel::Engine::run_maintenance
    }
    ++pkts_seen_;
  }

  SCAP_COLD void run_maintenance(unsigned long now) {
    last_maintenance_ = now;
    expired_ = 0;
  }

 private:
  unsigned long pkts_seen_ = 0;
  unsigned long last_maintenance_ = 0;
  unsigned long expired_ = 0;
};

}  // namespace scap::kernel
