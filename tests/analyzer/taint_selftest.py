#!/usr/bin/env python3
"""Meta-test for tools/scap_taint.py over tests/analyzer/taint_fixtures/.

Every fixture encodes its own expected findings, *including the full
source->sink taint chain* — the analysis' value is the chain, so the
self-test pins it exactly, not just the rule and line:

    k.seen += x;  // expect-chain: <rule>: src:<label> -> A -> B -> sink:<label>
    // expect-chain-next-line: <rule>: <chain>      (for lines whose
                                                    trailing comment slot
                                                    is taken, e.g. a
                                                    waiver under test)

Chains are written exactly as the tool renders them. Findings that carry
no chain (stats-registry rows, stale-waiver, reasonless-waiver) use the
sentinel "-". Registry-row findings live in the sibling `.inc` files, so
expectations are collected from both .cpp and .inc fixtures.

The tool runs in --fixtures mode and its JSON findings are compared
against the union of all expectations as an exact set of
(file, line, rule, chain) tuples — a missing finding, a spurious finding,
a wrong line, a wrong rule, or a wrong *chain* all fail. Structural
invariants on top: every *_bad fixture must yield at least one finding
(in its .cpp or its sibling .inc) and every *_good fixture must yield
none in either.

The text frontend has no external dependencies, so it is always
exercised. When libclang is available the clang frontend runs too and
must match the *same* expectations — that is the frontend-parity check.

Exit status: 0 pass, 1 fail. (Never 77: the text frontend always runs.)
"""

import json
import os
import re
import subprocess
import sys

EXIT_SKIP = 77

EXPECT_RE = re.compile(r"//\s*expect-chain:\s*([a-z-]+):\s*(.+?)\s*$")
EXPECT_NEXT_RE = re.compile(
    r"//\s*expect-chain-next-line:\s*([a-z-]+):\s*(.+?)\s*$")


def collect_expectations(fixtures_dir):
    """Set of (file, line, rule, chain) parsed from .cpp and .inc files."""
    expected = set()
    for name in sorted(os.listdir(fixtures_dir)):
        if not name.endswith((".cpp", ".inc")):
            continue
        path = os.path.join(fixtures_dir, name)
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                m = EXPECT_RE.search(line)
                if m:
                    expected.add((name, lineno, m.group(1), m.group(2)))
                m = EXPECT_NEXT_RE.search(line)
                if m:
                    expected.add((name, lineno + 1, m.group(1), m.group(2)))
    return expected


def run_frontend(tool, fixtures, frontend):
    """Returns (findings set | None-if-skipped, ok)."""
    proc = subprocess.run(
        [sys.executable, tool, "--fixtures", fixtures, "--json",
         "--frontend", frontend],
        capture_output=True, text=True)
    if proc.returncode == EXIT_SKIP:
        return None, True
    if proc.returncode not in (0, 1):
        print(f"taint_selftest: [{frontend}] tool exited "
              f"{proc.returncode}", file=sys.stderr)
        print(proc.stderr, file=sys.stderr, end="")
        return None, False
    try:
        findings = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        print(f"taint_selftest: [{frontend}] bad JSON: {e}", file=sys.stderr)
        print(proc.stdout, file=sys.stderr)
        return None, False
    return {(f["file"], f["line"], f["rule"],
             " -> ".join(f["chain"]) if f["chain"] else "-")
            for f in findings}, True


def check(frontend, actual, expected, fixtures):
    ok = True
    for miss in sorted(expected - actual):
        print(f"MISSING  [{frontend}] {miss[0]}:{miss[1]}: expected "
              f"[{miss[2]}] chain '{miss[3]}' was not reported")
        ok = False
    for extra in sorted(actual - expected):
        print(f"SPURIOUS [{frontend}] {extra[0]}:{extra[1]}: unexpected "
              f"[{extra[2]}] chain '{extra[3]}'")
        ok = False
    # Stem-based so registry-row findings in a sibling .inc count for the
    # .cpp fixture that owns it.
    flagged_stems = {os.path.splitext(f)[0] for f, _, _, _ in actual}
    for name in sorted(os.listdir(fixtures)):
        if not name.endswith(".cpp"):
            continue
        stem = os.path.splitext(name)[0]
        if stem.endswith("_bad") and stem not in flagged_stems:
            print(f"INVARIANT [{frontend}] {name}: bad fixture produced "
                  "no findings")
            ok = False
        if stem.endswith("_good") and stem in flagged_stems:
            print(f"INVARIANT [{frontend}] {name}: good twin produced "
                  "findings")
            ok = False
    return ok


def validate_expectations(expected, scap_rules):
    """Harness sanity from the shared registry: unknown rule names would
    silently never match, and an uncovered taint rule is one the
    self-test cannot catch regressing."""
    ok = True
    owned = scap_rules.rules_for("taint")
    valid = set(owned) | {scap_rules.WAIVER_RULE,
                          scap_rules.STALE_WAIVER_RULE}
    for name, line, rule, _ in sorted(expected):
        if rule not in valid:
            print(f"HARNESS  {name}:{line}: expectation names unknown "
                  f"rule [{rule}] (see tools/scap_rules.py)")
            ok = False
    covered = {rule for _, _, rule, _ in expected}
    for rule in owned:
        if rule not in covered:
            print(f"HARNESS  rule [{rule}] has no fixture expectation — "
                  "the self-test cannot catch it regressing")
            ok = False
    return ok


def main():
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(here))
    tool = os.path.join(root, "tools", "scap_taint.py")
    fixtures = os.path.join(here, "taint_fixtures")

    sys.path.insert(0, os.path.join(root, "tools"))
    import scap_rules
    expected = collect_expectations(fixtures)
    if not expected:
        print("taint_selftest: no expectations found in fixtures "
              "(broken harness)", file=sys.stderr)
        return 1
    if not validate_expectations(expected, scap_rules):
        return 1

    ok = True
    ran = []
    for frontend in ("text", "clang"):
        actual, frontend_ok = run_frontend(tool, fixtures, frontend)
        if not frontend_ok:
            ok = False
            continue
        if actual is None:
            print(f"taint_selftest: [{frontend}] libclang unavailable, "
                  "frontend skipped")
            continue
        ran.append(frontend)
        ok = check(frontend, actual, expected, fixtures) and ok

    if not ran:
        print("taint_selftest: no frontend ran (broken harness)",
              file=sys.stderr)
        return 1
    if ok:
        print(f"taint_selftest: {len(expected)} expected finding(s) "
              f"matched exactly on frontend(s): {', '.join(ran)}")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
