#include "baseline/nids.hpp"
#include "baseline/stream5.hpp"

#include <gtest/gtest.h>

#include <string>

#include "tests/kernel/test_helpers.hpp"

namespace scap::baseline {
namespace {

using kernel::testing::SessionBuilder;
using kernel::testing::client_tuple;

TEST(NidsEngine, ReassemblesHandshakedConnection) {
  std::string text;
  NidsEngine nids({}, [&](const FiveTuple&, auto data) {
    text.append(data.begin(), data.end());
  });
  SessionBuilder s;
  Timestamp t(0);
  nids.on_packet(s.syn(t), t);
  nids.on_packet(s.syn_ack(t), t);
  nids.on_packet(s.ack(t), t);
  nids.on_packet(s.data("user-level ", t), t);
  nids.on_packet(s.data("reassembly", t), t);
  nids.on_packet(s.fin(t), t);
  EXPECT_EQ(text, "user-level reassembly");
  EXPECT_EQ(nids.stats().streams_tracked, 1u);
  EXPECT_EQ(nids.stats().streams_with_data, 1u);
}

TEST(NidsEngine, IgnoresMidFlowDataWithoutHandshake) {
  // The key Fig. 6c effect: if the SYN was dropped, the stream is lost.
  std::string text;
  NidsEngine nids({}, [&](const FiveTuple&, auto data) {
    text.append(data.begin(), data.end());
  });
  SessionBuilder s;
  Timestamp t(0);
  nids.on_packet(s.data("orphan data", t), t);  // no SYN was seen
  nids.on_packet(s.fin(t), t);
  nids.finish(t);
  EXPECT_TRUE(text.empty());
  EXPECT_EQ(nids.stats().streams_tracked, 0u);
  EXPECT_EQ(nids.stats().pkts_untracked, 1u);
}

TEST(NidsEngine, RejectsNewFlowsAtLimit) {
  // The key Fig. 5 effect: a static table limit rejects NEW streams.
  NidsConfig cfg;
  cfg.max_flows = 3;
  NidsEngine nids(cfg, nullptr);
  Timestamp t(0);
  for (std::uint16_t i = 0; i < 5; ++i) {
    SessionBuilder s(client_tuple(static_cast<std::uint16_t>(1000 + i), 80));
    nids.on_packet(s.syn(t), t);
  }
  EXPECT_EQ(nids.stats().streams_tracked, 3u);
  EXPECT_EQ(nids.stats().streams_rejected, 2u);
  EXPECT_EQ(nids.tracked_now(), 3u);
}

TEST(NidsEngine, BothDirectionsOneConnection) {
  std::uint64_t chunks = 0;
  NidsEngine nids({}, [&](const FiveTuple&, auto) { ++chunks; });
  SessionBuilder s;
  Timestamp t(0);
  nids.on_packet(s.syn(t), t);
  nids.on_packet(s.syn_ack(t), t);
  nids.on_packet(s.data("request", t), t);
  nids.on_packet(s.reply_data("response", t), t);
  EXPECT_EQ(nids.stats().streams_tracked, 1u);  // one connection entry
  nids.finish(t);
  EXPECT_EQ(chunks, 2u);  // one chunk per direction
}

TEST(NidsEngine, IdleConnectionsExpire) {
  NidsConfig cfg;
  cfg.inactivity_timeout = Duration::from_sec(5);
  std::string text;
  NidsEngine nids(cfg, [&](const FiveTuple&, auto data) {
    text.append(data.begin(), data.end());
  });
  SessionBuilder s;
  nids.on_packet(s.syn(Timestamp(0)), Timestamp(0));
  nids.on_packet(s.data("idle data", Timestamp(0)), Timestamp(0));
  EXPECT_EQ(nids.tracked_now(), 1u);
  // A later unrelated packet triggers the expiry scan.
  SessionBuilder other(client_tuple(9999, 80));
  nids.on_packet(other.syn(Timestamp::from_sec(10)), Timestamp::from_sec(10));
  EXPECT_EQ(nids.tracked_now(), 1u);  // only the new one
  EXPECT_EQ(text, "idle data");      // flushed on expiry
}

TEST(NidsEngine, CopyBytesTracked) {
  NidsEngine nids({}, nullptr);
  SessionBuilder s;
  Timestamp t(0);
  nids.on_packet(s.syn(t), t);
  nids.on_packet(s.data("0123456789", t), t);
  EXPECT_EQ(nids.stats().copy_bytes, 10u);  // the §6.3 extra copy
}

TEST(Stream5Engine, PicksUpFromSynAck) {
  Stream5Engine snort({}, nullptr);
  NidsEngine nids({}, nullptr);
  SessionBuilder s;
  Timestamp t(0);
  // Only the SYN|ACK survives (SYN lost).
  snort.on_packet(s.syn_ack(t), t);
  nids.on_packet(s.syn_ack(t), t);
  EXPECT_EQ(snort.stats().streams_tracked, 1u);
  EXPECT_EQ(nids.stats().streams_tracked, 0u);
}

TEST(Stream5Engine, CutoffDiscardsInUserSpace) {
  Stream5Config cfg;
  cfg.cutoff_bytes = 8;
  std::string text;
  Stream5Engine snort(cfg, [&](const FiveTuple&, auto data) {
    text.append(data.begin(), data.end());
  });
  SessionBuilder s;
  Timestamp t(0);
  snort.on_packet(s.syn(t), t);
  snort.on_packet(s.data("01234567", t), t);
  snort.on_packet(s.data("discarded!", t), t);
  snort.on_packet(s.fin(t), t);
  EXPECT_EQ(text, "01234567");
  EXPECT_EQ(snort.stats().pkts_discarded_cutoff, 1u);
  // Crucially the copy of the first 8 bytes still happened BEFORE the
  // discard decision — and the discarded packet still cost a ring pass.
  EXPECT_GE(snort.stats().pkts_processed, 4u);
}

TEST(Stream5Engine, TargetPolicyConfigurable) {
  for (auto policy :
       {kernel::OverlapPolicy::kFirst, kernel::OverlapPolicy::kLast}) {
    Stream5Config cfg;
    cfg.policy = policy;
    cfg.mode = kernel::ReassemblyMode::kTcpStrict;
    std::string text;
    Stream5Engine snort(cfg, [&](const FiveTuple&, auto data) {
      text.append(data.begin(), data.end());
    });
    SessionBuilder s;
    Timestamp t(0);
    snort.on_packet(s.syn(t), t);
    const std::uint32_t base = s.client_seq();
    // Overlapping segments, buffered out of order so policy matters.
    snort.on_packet(s.data_at(base + 6, "ATTACK", t), t);
    snort.on_packet(s.data_at(base + 6, "BENIGN", t), t);
    snort.on_packet(s.data_at(base, "head: ", t), t);
    snort.finish(t);
    EXPECT_EQ(text, policy == kernel::OverlapPolicy::kFirst
                        ? "head: ATTACK"
                        : "head: BENIGN");
  }
}

}  // namespace
}  // namespace scap::baseline
