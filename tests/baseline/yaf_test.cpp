#include "baseline/yaf.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "tests/kernel/test_helpers.hpp"

namespace scap::baseline {
namespace {

using kernel::testing::SessionBuilder;
using kernel::testing::client_tuple;

TEST(YafEngine, ExportsFlowOnFin) {
  std::vector<YafFlowRecord> exported;
  YafEngine yaf({}, [&](const YafFlowRecord& r) { exported.push_back(r); });
  SessionBuilder s;
  Timestamp t(0);
  yaf.on_packet(s.syn(t), t);
  yaf.on_packet(s.syn_ack(t), t);
  yaf.on_packet(s.data("0123456789", Timestamp::from_usec(100)),
                Timestamp::from_usec(100));
  yaf.on_packet(s.fin(Timestamp::from_usec(200)), Timestamp::from_usec(200));
  ASSERT_EQ(exported.size(), 1u);
  EXPECT_EQ(exported[0].packets, 4u);
  EXPECT_GT(exported[0].bytes, 10u);  // wire bytes include headers
  EXPECT_EQ(exported[0].first_seen.usec(), 0);
  EXPECT_EQ(exported[0].last_seen.usec(), 200);
  EXPECT_EQ(yaf.tracked_now(), 0u);
}

TEST(YafEngine, BothDirectionsOneRecord) {
  std::vector<YafFlowRecord> exported;
  YafEngine yaf({}, [&](const YafFlowRecord& r) { exported.push_back(r); });
  SessionBuilder s;
  Timestamp t(0);
  yaf.on_packet(s.syn(t), t);
  yaf.on_packet(s.syn_ack(t), t);
  yaf.on_packet(s.data("up", t), t);
  yaf.on_packet(s.reply_data("down", t), t);
  yaf.finish(t);
  ASSERT_EQ(exported.size(), 1u);
  EXPECT_EQ(exported[0].packets, 4u);
}

TEST(YafEngine, IdleFlowsExported) {
  std::vector<YafFlowRecord> exported;
  YafConfig cfg;
  cfg.idle_timeout = Duration::from_sec(3);
  YafEngine yaf(cfg, [&](const YafFlowRecord& r) { exported.push_back(r); });
  SessionBuilder udp_like(client_tuple(1234, 9000));
  yaf.on_packet(udp_like.data("no close", Timestamp(0)), Timestamp(0));
  SessionBuilder other(client_tuple(5678, 9000));
  yaf.on_packet(other.syn(Timestamp::from_sec(10)), Timestamp::from_sec(10));
  ASSERT_EQ(exported.size(), 1u);
  EXPECT_EQ(exported[0].packets, 1u);
}

TEST(YafEngine, SnaplenLimitsCopyBytes) {
  YafEngine yaf({}, nullptr);
  EXPECT_EQ(yaf.snaplen(), 96u);
  SessionBuilder s;
  Timestamp t(0);
  std::string big(1400, 'x');
  // The driver would snap before handing the packet in; simulate that.
  Packet snapped = s.data(big, t).snapped(96);
  yaf.on_packet(snapped, t);
  EXPECT_LE(yaf.stats().copy_bytes, 96u);
  // The wire payload is still known from the IP header.
  EXPECT_EQ(yaf.stats().payload_bytes, 1400u);
}

TEST(YafEngine, FinishExportsEverything) {
  std::vector<YafFlowRecord> exported;
  YafEngine yaf({}, [&](const YafFlowRecord& r) { exported.push_back(r); });
  Timestamp t(0);
  for (std::uint16_t i = 0; i < 7; ++i) {
    SessionBuilder s(client_tuple(static_cast<std::uint16_t>(2000 + i), 80));
    yaf.on_packet(s.syn(t), t);
  }
  yaf.finish(t);
  EXPECT_EQ(exported.size(), 7u);
  EXPECT_EQ(yaf.flows_exported(), 7u);
}

}  // namespace
}  // namespace scap::baseline
