#include "packet/pcap.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "packet/craft.hpp"

namespace scap {
namespace {

class PcapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("scap_pcap_test_" + std::to_string(::getpid()) + ".pcap"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

std::span<const std::uint8_t> payload_of(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST_F(PcapTest, WriteReadRoundTrip) {
  TcpSegmentSpec spec;
  spec.tuple = {0x0a000001, 0x0a000002, 1234, 80, kProtoTcp};
  const std::string data = "round-trip";
  spec.payload = payload_of(data);

  {
    PcapWriter w(path_);
    for (int i = 0; i < 5; ++i) {
      spec.seq = static_cast<std::uint32_t>(i * 10);
      w.write(make_tcp_packet(spec, Timestamp::from_usec(1'000'000 + i)));
    }
    EXPECT_EQ(w.packets_written(), 5u);
  }

  PcapReader r(path_);
  EXPECT_EQ(r.link_type(), kLinkTypeEthernet);
  int n = 0;
  while (auto p = r.next()) {
    ASSERT_TRUE(p->valid());
    EXPECT_EQ(p->seq(), static_cast<std::uint32_t>(n * 10));
    EXPECT_EQ(p->timestamp().usec(), 1'000'000 + n);
    EXPECT_EQ(std::string(p->payload().begin(), p->payload().end()), data);
    ++n;
  }
  EXPECT_EQ(n, 5);
}

TEST_F(PcapTest, SnappedWireLenPreserved) {
  TcpSegmentSpec spec;
  spec.tuple = {1, 2, 3, 4, kProtoTcp};
  std::string big(2000, 'a');
  spec.payload = payload_of(big);
  {
    PcapWriter w(path_);
    w.write(make_tcp_packet(spec, Timestamp(0)).snapped(100));
  }
  PcapReader r(path_);
  auto p = r.next();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->capture_len(), 100u);
  EXPECT_EQ(p->wire_len(), kEthHeaderLen + 40 + 2000);
}

TEST_F(PcapTest, TruncatedFinalRecordTreatedAsEof) {
  {
    PcapWriter w(path_);
    TcpSegmentSpec spec;
    spec.tuple = {1, 2, 3, 4, kProtoTcp};
    w.write(make_tcp_packet(spec, Timestamp(0)));
  }
  // Chop off the last 10 bytes.
  auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 10);
  PcapReader r(path_);
  EXPECT_FALSE(r.next().has_value());
}

TEST_F(PcapTest, BadMagicThrows) {
  {
    std::ofstream out(path_, std::ios::binary);
    const char junk[64] = "not a pcap file at all, sorry";
    out.write(junk, sizeof(junk));
  }
  EXPECT_THROW(PcapReader r(path_), std::runtime_error);
}

TEST_F(PcapTest, MissingFileThrows) {
  EXPECT_THROW(PcapReader r("/nonexistent/definitely/not.pcap"),
               std::runtime_error);
}

TEST_F(PcapTest, EmptyFileNoPackets) {
  { PcapWriter w(path_); }
  PcapReader r(path_);
  EXPECT_FALSE(r.next().has_value());
}

}  // namespace
}  // namespace scap
