#include "packet/headers.hpp"

#include <gtest/gtest.h>

#include <array>

namespace scap {
namespace {

TEST(EthHeader, ParseWriteRoundTrip) {
  EthHeader h{};
  for (int i = 0; i < 6; ++i) {
    h.dst[i] = static_cast<std::uint8_t>(i);
    h.src[i] = static_cast<std::uint8_t>(0x10 + i);
  }
  h.ether_type = kEtherTypeIpv4;
  std::array<std::uint8_t, kEthHeaderLen> buf{};
  write_eth(buf, h);
  auto parsed = parse_eth(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ether_type, kEtherTypeIpv4);
  EXPECT_EQ(parsed->dst[3], 3);
  EXPECT_EQ(parsed->src[5], 0x15);
}

TEST(EthHeader, TooShortRejected) {
  std::array<std::uint8_t, 13> buf{};
  EXPECT_FALSE(parse_eth(buf).has_value());
}

TEST(Ipv4Header, ParseWriteRoundTrip) {
  Ipv4Header h{};
  h.version = 4;
  h.ihl = 5;
  h.total_len = 1500;
  h.id = 0xbeef;
  h.frag_off = 0;
  h.ttl = 64;
  h.protocol = kProtoTcp;
  h.src_ip = 0x0a000001;
  h.dst_ip = 0xc0a80102;
  std::array<std::uint8_t, 20> buf{};
  write_ipv4(buf, h);
  auto parsed = parse_ipv4(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->total_len, 1500);
  EXPECT_EQ(parsed->id, 0xbeef);
  EXPECT_EQ(parsed->protocol, kProtoTcp);
  EXPECT_EQ(parsed->src_ip, 0x0a000001u);
  EXPECT_EQ(parsed->dst_ip, 0xc0a80102u);
  EXPECT_EQ(parsed->header_len(), 20u);
  EXPECT_FALSE(parsed->more_fragments());
}

TEST(Ipv4Header, FragmentFieldsDecoded) {
  Ipv4Header h{};
  h.version = 4;
  h.ihl = 5;
  h.total_len = 204;  // a total_len below header_len is now rejected
  h.frag_off = 0x2000 | (184 / 8);  // MF set, offset 184 bytes
  std::array<std::uint8_t, 20> buf{};
  write_ipv4(buf, h);
  auto parsed = parse_ipv4(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->more_fragments());
  EXPECT_EQ(parsed->fragment_offset_bytes(), 184);
}

TEST(Ipv4Header, RejectsBadVersionOrIhl) {
  std::array<std::uint8_t, 20> buf{};
  buf[0] = 0x60;  // version 6
  EXPECT_FALSE(parse_ipv4(buf).has_value());
  buf[0] = 0x43;  // version 4, ihl 3 (invalid)
  EXPECT_FALSE(parse_ipv4(buf).has_value());
}

TEST(TcpHeader, ParseWriteRoundTrip) {
  TcpHeader h{};
  h.src_port = 12345;
  h.dst_port = 80;
  h.seq = 0xdeadbeef;
  h.ack = 0x12345678;
  h.data_off = 5;
  h.flags = kTcpSyn | kTcpAck;
  h.window = 8192;
  std::array<std::uint8_t, 20> buf{};
  write_tcp(buf, h);
  auto parsed = parse_tcp(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, 12345);
  EXPECT_EQ(parsed->dst_port, 80);
  EXPECT_EQ(parsed->seq, 0xdeadbeefu);
  EXPECT_EQ(parsed->ack, 0x12345678u);
  EXPECT_TRUE(parsed->syn());
  EXPECT_TRUE(parsed->ack_flag());
  EXPECT_FALSE(parsed->fin());
  EXPECT_FALSE(parsed->rst());
  EXPECT_EQ(parsed->header_len(), 20u);
}

TEST(TcpHeader, RejectsShortDataOffset) {
  std::array<std::uint8_t, 20> buf{};
  buf[12] = 0x40;  // data_off = 4 — invalid
  EXPECT_FALSE(parse_tcp(buf).has_value());
}

TEST(UdpHeader, ParseWriteRoundTrip) {
  UdpHeader h{};
  h.src_port = 53;
  h.dst_port = 33333;
  h.length = 120;
  std::array<std::uint8_t, 8> buf{};
  write_udp(buf, h);
  auto parsed = parse_udp(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, 53);
  EXPECT_EQ(parsed->dst_port, 33333);
  EXPECT_EQ(parsed->length, 120);
}

TEST(FiveTuple, ReverseAndCanonical) {
  FiveTuple t{0x01020304, 0x05060708, 1000, 80, kProtoTcp};
  FiveTuple r = t.reversed();
  EXPECT_EQ(r.src_ip, t.dst_ip);
  EXPECT_EQ(r.dst_port, t.src_port);
  EXPECT_EQ(t.canonical(), r.canonical());
  EXPECT_NE(t, r);
}

TEST(FiveTuple, CanonicalTieBreaksOnPort) {
  FiveTuple t{0x01020304, 0x01020304, 2000, 80, kProtoTcp};
  EXPECT_EQ(t.canonical().src_port, 80);
}

TEST(IpToString, Formats) {
  EXPECT_EQ(ip_to_string(0x7f000001), "127.0.0.1");
  EXPECT_EQ(ip_to_string(0xc0a80a01), "192.168.10.1");
}

}  // namespace
}  // namespace scap
