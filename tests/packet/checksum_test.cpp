#include "packet/checksum.hpp"

#include <gtest/gtest.h>

#include <array>

namespace scap {
namespace {

// The classic RFC 1071 worked example.
TEST(Checksum, Rfc1071Example) {
  const std::array<std::uint8_t, 8> data = {0x00, 0x01, 0xf2, 0x03,
                                            0xf4, 0xf5, 0xf6, 0xf7};
  // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold 0xddf2 -> ~ = 0x220d
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, ZeroBufferChecksumIsAllOnes) {
  const std::array<std::uint8_t, 4> data = {0, 0, 0, 0};
  EXPECT_EQ(internet_checksum(data), 0xffff);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::array<std::uint8_t, 3> data = {0x12, 0x34, 0x56};
  // 0x1234 + 0x5600 = 0x6834 -> ~ = 0x97cb
  EXPECT_EQ(internet_checksum(data), 0x97cb);
}

TEST(Checksum, VerificationYieldsZero) {
  // Compute checksum, embed it, verify the whole thing sums to zero.
  std::array<std::uint8_t, 20> hdr = {};
  hdr[0] = 0x45;
  hdr[2] = 0x00;
  hdr[3] = 0x3c;
  hdr[8] = 64;
  hdr[9] = 6;
  std::uint16_t c = internet_checksum(hdr);
  hdr[10] = static_cast<std::uint8_t>(c >> 8);
  hdr[11] = static_cast<std::uint8_t>(c & 0xff);
  EXPECT_EQ(internet_checksum(hdr), 0);
}

TEST(TransportChecksum, PseudoHeaderIncluded) {
  const std::array<std::uint8_t, 8> seg = {0x00, 0x35, 0x82, 0x35,
                                           0x00, 0x08, 0x00, 0x00};
  std::uint16_t a = transport_checksum(0x0a000001, 0x0a000002, 17, seg);
  std::uint16_t b = transport_checksum(0x0a000001, 0x0a000003, 17, seg);
  EXPECT_NE(a, b);  // changing an IP must change the checksum
}

TEST(TransportChecksum, RoundTripVerifies) {
  std::array<std::uint8_t, 9> seg = {0x00, 0x35, 0x82, 0x35, 0x00,
                                     0x09, 0x00, 0x00, 0x42};
  std::uint16_t c = transport_checksum(0xc0a80001, 0xc0a80002, 17, seg);
  seg[6] = static_cast<std::uint8_t>(c >> 8);
  seg[7] = static_cast<std::uint8_t>(c & 0xff);
  EXPECT_EQ(transport_checksum(0xc0a80001, 0xc0a80002, 17, seg), 0);
}

TEST(ChecksumPartial, Accumulates) {
  const std::array<std::uint8_t, 2> a = {0x12, 0x34};
  const std::array<std::uint8_t, 2> b = {0x56, 0x78};
  const std::array<std::uint8_t, 4> ab = {0x12, 0x34, 0x56, 0x78};
  std::uint32_t two_step = checksum_partial(b, checksum_partial(a));
  EXPECT_EQ(two_step, checksum_partial(ab));
}

}  // namespace
}  // namespace scap
