// Reader robustness: byte-swapped and nanosecond-resolution pcap files,
// and malformed inputs.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "base/bytes.hpp"
#include "packet/craft.hpp"
#include "packet/pcap.hpp"

namespace scap {
namespace {

class PcapEndianTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("scap_pcap_endian_" + std::to_string(::getpid()) + ".pcap"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }

  /// Write a minimal pcap with explicit control of endianness and magic.
  void write_file(bool big_endian, std::uint32_t magic,
                  std::uint32_t ts_frac) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    auto w16 = [&](std::uint16_t v) {
      std::uint8_t b[2];
      if (big_endian) {
        b[0] = static_cast<std::uint8_t>(v >> 8);
        b[1] = static_cast<std::uint8_t>(v);
      } else {
        store_le16(b, v);
      }
      out.write(reinterpret_cast<char*>(b), 2);
    };
    auto w32 = [&](std::uint32_t v) {
      std::uint8_t b[4];
      if (big_endian) {
        store_be32(b, v);
      } else {
        store_le32(b, v);
      }
      out.write(reinterpret_cast<char*>(b), 4);
    };
    w32(magic);
    w16(2);
    w16(4);
    w32(0);
    w32(0);
    w32(65535);
    w32(kLinkTypeEthernet);

    TcpSegmentSpec spec;
    spec.tuple = {0x0a000001, 0x0a000002, 1234, 80, kProtoTcp};
    spec.seq = 42;
    auto frame = build_tcp_frame(spec);
    w32(100);                                       // ts_sec
    w32(ts_frac);                                   // ts_usec / ts_nsec
    w32(static_cast<std::uint32_t>(frame.size()));  // incl_len
    w32(static_cast<std::uint32_t>(frame.size()));  // orig_len
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
  }

  std::string path_;
};

TEST_F(PcapEndianTest, ReadsByteSwappedFile) {
  write_file(/*big_endian=*/true, kPcapMagicUsec, /*ts_frac=*/500000);
  PcapReader r(path_);
  EXPECT_EQ(r.link_type(), kLinkTypeEthernet);
  auto p = r.next();
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->valid());
  EXPECT_EQ(p->seq(), 42u);
  EXPECT_EQ(p->timestamp().usec(), 100 * 1000000 + 500000);
}

TEST_F(PcapEndianTest, ReadsNanosecondMagic) {
  write_file(/*big_endian=*/false, kPcapMagicNsec, /*ts_frac=*/999999999);
  PcapReader r(path_);
  auto p = r.next();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->timestamp().ns(), 100ll * 1000000000 + 999999999);
}

TEST_F(PcapEndianTest, ReadsByteSwappedNanosecondMagic) {
  write_file(/*big_endian=*/true, kPcapMagicNsec, /*ts_frac=*/123456789);
  PcapReader r(path_);
  auto p = r.next();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->timestamp().ns(), 100ll * 1000000000 + 123456789);
}

TEST_F(PcapEndianTest, AbsurdRecordLengthStopsCleanly) {
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    std::uint8_t hdr[24] = {};
    store_le32(hdr, kPcapMagicUsec);
    store_le32(hdr + 16, 65535);
    store_le32(hdr + 20, kLinkTypeEthernet);
    out.write(reinterpret_cast<char*>(hdr), sizeof(hdr));
    std::uint8_t rec[16] = {};
    store_le32(rec + 8, 0x40000000);  // 1GB incl_len: corrupt
    out.write(reinterpret_cast<char*>(rec), sizeof(rec));
  }
  PcapReader r(path_);
  EXPECT_FALSE(r.next().has_value());
}

}  // namespace
}  // namespace scap
