#include "packet/craft.hpp"

#include <gtest/gtest.h>

#include <string>

#include "packet/checksum.hpp"

namespace scap {
namespace {

std::span<const std::uint8_t> payload_of(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(Craft, TcpFrameChecksumsValid) {
  TcpSegmentSpec spec;
  spec.tuple = {0xc0a80001, 0x08080808, 5555, 443, kProtoTcp};
  spec.seq = 42;
  const std::string data = "hello world";
  spec.payload = payload_of(data);
  auto frame = build_tcp_frame(spec);
  EXPECT_TRUE(verify_checksums(frame));
}

TEST(Craft, UdpFrameChecksumsValid) {
  FiveTuple t{0xc0a80001, 0x08080808, 5555, 53, kProtoUdp};
  const std::string data = "payload-bytes";
  auto frame = build_udp_frame(t, payload_of(data));
  EXPECT_TRUE(verify_checksums(frame));
}

TEST(Craft, CorruptedPayloadFailsVerification) {
  TcpSegmentSpec spec;
  spec.tuple = {0xc0a80001, 0x08080808, 5555, 443, kProtoTcp};
  const std::string data = "hello world";
  spec.payload = payload_of(data);
  auto frame = build_tcp_frame(spec);
  frame.back() ^= 0xff;
  EXPECT_FALSE(verify_checksums(frame));
}

TEST(Craft, FrameSizesExact) {
  TcpSegmentSpec spec;
  spec.tuple = {1, 2, 3, 4, kProtoTcp};
  auto empty_tcp = build_tcp_frame(spec);
  EXPECT_EQ(empty_tcp.size(), kEthHeaderLen + 20 + 20);
  auto empty_udp = build_udp_frame({1, 2, 3, 4, kProtoUdp}, {});
  EXPECT_EQ(empty_udp.size(), kEthHeaderLen + 20 + 8);
}

TEST(Craft, FlagsPropagate) {
  TcpSegmentSpec spec;
  spec.tuple = {1, 2, 3, 4, kProtoTcp};
  spec.flags = kTcpSyn;
  Packet p = make_tcp_packet(spec, Timestamp(0));
  EXPECT_TRUE(p.has_flag(kTcpSyn));
  EXPECT_FALSE(p.has_flag(kTcpAck));
}

}  // namespace
}  // namespace scap
