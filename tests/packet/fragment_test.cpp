// IP fragmentation handling: fragments decode at the network layer, carry
// no transport ports, and the kernel treats them as non-reassemblable
// traffic rather than corrupting a TCP stream.
#include <gtest/gtest.h>

#include "kernel/module.hpp"
#include "packet/checksum.hpp"
#include "packet/craft.hpp"

namespace scap {
namespace {

/// Build an IPv4 fragment (slice of a UDP datagram) by hand.
Packet make_fragment(std::uint16_t frag_off_bytes, bool more_fragments,
                     std::size_t payload_len) {
  std::vector<std::uint8_t> frame(kEthHeaderLen + 20 + payload_len, 0x5a);
  EthHeader eth{};
  eth.ether_type = kEtherTypeIpv4;
  write_eth(frame, eth);
  Ipv4Header ip{};
  ip.version = 4;
  ip.ihl = 5;
  ip.total_len = static_cast<std::uint16_t>(20 + payload_len);
  ip.frag_off = static_cast<std::uint16_t>(
      (more_fragments ? 0x2000 : 0) | (frag_off_bytes / 8));
  ip.ttl = 64;
  ip.protocol = kProtoUdp;
  ip.src_ip = 0x0a000001;
  ip.dst_ip = 0x0a000002;
  write_ipv4(std::span<std::uint8_t>(frame).subspan(kEthHeaderLen), ip);
  const std::uint16_t csum = internet_checksum(
      std::span<const std::uint8_t>(frame).subspan(kEthHeaderLen, 20));
  frame[kEthHeaderLen + 10] = static_cast<std::uint8_t>(csum >> 8);
  frame[kEthHeaderLen + 11] = static_cast<std::uint8_t>(csum & 0xff);
  return Packet::from_bytes(frame, Timestamp(0));
}

TEST(Fragments, NonFirstFragmentHasNoPorts) {
  Packet frag = make_fragment(1480, false, 100);
  ASSERT_TRUE(frag.valid());
  EXPECT_TRUE(frag.is_ip_fragment());
  EXPECT_EQ(frag.tuple().src_port, 0);
  EXPECT_EQ(frag.tuple().dst_port, 0);
  EXPECT_EQ(frag.payload_len(), 0u);  // transport payload not parseable
}

TEST(Fragments, FirstFragmentParsesTransportHeader) {
  // First fragment (offset 0, MF set) still exposes the UDP header.
  std::vector<std::uint8_t> udp_payload(64, 0x11);
  auto full = build_udp_frame({0x0a000001, 0x0a000002, 1000, 53, kProtoUdp},
                              udp_payload);
  full[kEthHeaderLen + 6] = 0x20;  // set MF in frag_off field
  // Recompute the IP checksum after the flag change.
  full[kEthHeaderLen + 10] = full[kEthHeaderLen + 11] = 0;
  const std::uint16_t csum = internet_checksum(
      std::span<const std::uint8_t>(full).subspan(kEthHeaderLen, 20));
  full[kEthHeaderLen + 10] = static_cast<std::uint8_t>(csum >> 8);
  full[kEthHeaderLen + 11] = static_cast<std::uint8_t>(csum & 0xff);

  Packet frag = Packet::from_bytes(full, Timestamp(0));
  ASSERT_TRUE(frag.valid());
  EXPECT_TRUE(frag.is_ip_fragment());
  EXPECT_EQ(frag.tuple().dst_port, 53);
}

TEST(Fragments, KernelAcceptsFragmentsWithoutCorruptingStreams) {
  kernel::KernelConfig cfg;
  cfg.memory_size = 1 << 20;
  kernel::ScapKernel k(cfg);
  Packet frag = make_fragment(1480, true, 200);
  auto out = k.handle_packet(frag, Timestamp(0));
  // Tracked as port-less network-layer traffic; nothing crashes, no TCP
  // stream is disturbed.
  EXPECT_NE(out.verdict, kernel::Verdict::kInvalid);
  k.terminate_all(Timestamp(1));
  auto& q = k.events(0);
  while (!q.empty()) {
    auto ev = q.pop();
    k.release_chunk(ev);
  }
  EXPECT_EQ(k.allocator().used(), 0u);
}

}  // namespace
}  // namespace scap
