#include "packet/bpf.hpp"

#include <gtest/gtest.h>

namespace scap {
namespace {

FiveTuple http{0x0a000001, 0xc0a80102, 43210, 80, kProtoTcp};
FiveTuple dns{0x0a000001, 0x08080808, 5353, 53, kProtoUdp};

TEST(Bpf, EmptyMatchesEverything) {
  BpfProgram p;
  EXPECT_TRUE(p.empty());
  EXPECT_TRUE(p.matches(http));
  EXPECT_TRUE(p.matches(dns));
}

TEST(Bpf, ProtocolPrimitives) {
  EXPECT_TRUE(BpfProgram::compile("tcp").matches(http));
  EXPECT_FALSE(BpfProgram::compile("tcp").matches(dns));
  EXPECT_TRUE(BpfProgram::compile("udp").matches(dns));
  EXPECT_TRUE(BpfProgram::compile("ip").matches(http));
  EXPECT_TRUE(BpfProgram::compile("proto 6").matches(http));
  EXPECT_FALSE(BpfProgram::compile("proto 17").matches(http));
}

TEST(Bpf, PortWithDirections) {
  EXPECT_TRUE(BpfProgram::compile("port 80").matches(http));
  EXPECT_TRUE(BpfProgram::compile("dst port 80").matches(http));
  EXPECT_FALSE(BpfProgram::compile("src port 80").matches(http));
  EXPECT_FALSE(BpfProgram::compile("port 81").matches(http));
}

TEST(Bpf, PortRange) {
  EXPECT_TRUE(BpfProgram::compile("portrange 79-81").matches(http));
  EXPECT_FALSE(BpfProgram::compile("portrange 81-90").matches(http));
  EXPECT_TRUE(BpfProgram::compile("src portrange 43000-43999").matches(http));
}

TEST(Bpf, HostWithDirections) {
  EXPECT_TRUE(BpfProgram::compile("host 10.0.0.1").matches(http));
  EXPECT_TRUE(BpfProgram::compile("src host 10.0.0.1").matches(http));
  EXPECT_FALSE(BpfProgram::compile("dst host 10.0.0.1").matches(http));
  EXPECT_TRUE(BpfProgram::compile("dst host 192.168.1.2").matches(http));
}

TEST(Bpf, NetPrefixes) {
  EXPECT_TRUE(BpfProgram::compile("net 10.0.0.0 / 8").matches(http));
  EXPECT_TRUE(BpfProgram::compile("net 10.0.0.0/8").matches(http));
  EXPECT_FALSE(BpfProgram::compile("src net 192.168.0.0/16").matches(http));
  EXPECT_TRUE(BpfProgram::compile("dst net 192.168.0.0/16").matches(http));
  EXPECT_TRUE(BpfProgram::compile("net 0.0.0.0/0").matches(dns));
}

TEST(Bpf, BooleanOperators) {
  EXPECT_TRUE(BpfProgram::compile("tcp and port 80").matches(http));
  EXPECT_FALSE(BpfProgram::compile("tcp and port 53").matches(http));
  EXPECT_TRUE(BpfProgram::compile("port 53 or port 80").matches(http));
  EXPECT_TRUE(BpfProgram::compile("not udp").matches(http));
  EXPECT_FALSE(BpfProgram::compile("not tcp").matches(http));
}

TEST(Bpf, PrecedenceAndParentheses) {
  // "a or b and c" = "a or (b and c)".
  auto p = BpfProgram::compile("udp or tcp and port 443");
  EXPECT_FALSE(p.matches(http));  // tcp but port 80
  EXPECT_TRUE(p.matches(dns));    // udp
  auto q = BpfProgram::compile("(udp or tcp) and port 443");
  EXPECT_FALSE(q.matches(dns));
  auto r = BpfProgram::compile("not (port 80 or port 53)");
  EXPECT_FALSE(r.matches(http));
  EXPECT_FALSE(r.matches(dns));
}

TEST(Bpf, SyntaxErrorsThrow) {
  EXPECT_THROW(BpfProgram::compile("frobnicate"), std::invalid_argument);
  EXPECT_THROW(BpfProgram::compile("port"), std::invalid_argument);
  EXPECT_THROW(BpfProgram::compile("port 99999"), std::invalid_argument);
  EXPECT_THROW(BpfProgram::compile("host 1.2.3"), std::invalid_argument);
  EXPECT_THROW(BpfProgram::compile("host 1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW(BpfProgram::compile("host 300.1.1.1"), std::invalid_argument);
  EXPECT_THROW(BpfProgram::compile("net 10.0.0.0"), std::invalid_argument);
  EXPECT_THROW(BpfProgram::compile("net 10.0.0.0/33"), std::invalid_argument);
  EXPECT_THROW(BpfProgram::compile("(tcp"), std::invalid_argument);
  EXPECT_THROW(BpfProgram::compile("tcp tcp"), std::invalid_argument);
  EXPECT_THROW(BpfProgram::compile("portrange 10-5"), std::invalid_argument);
}

TEST(Bpf, SourcePreserved) {
  auto p = BpfProgram::compile("tcp and port 80");
  EXPECT_EQ(p.source(), "tcp and port 80");
}

}  // namespace
}  // namespace scap
