#include "packet/packet.hpp"

#include <gtest/gtest.h>

#include <string>

#include "packet/craft.hpp"

namespace scap {
namespace {

FiveTuple tuple() { return {0x0a000001, 0x0a000002, 40000, 80, kProtoTcp}; }

std::span<const std::uint8_t> payload_of(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(Packet, DecodesTcpSegment) {
  const std::string data = "GET / HTTP/1.1\r\n";
  TcpSegmentSpec spec;
  spec.tuple = tuple();
  spec.seq = 1000;
  spec.ack = 2000;
  spec.flags = kTcpAck | kTcpPsh;
  spec.payload = payload_of(data);
  Packet p = make_tcp_packet(spec, Timestamp(123));

  ASSERT_TRUE(p.valid());
  EXPECT_TRUE(p.is_tcp());
  EXPECT_EQ(p.tuple().src_port, 40000);
  EXPECT_EQ(p.tuple().dst_port, 80);
  EXPECT_EQ(p.seq(), 1000u);
  EXPECT_EQ(p.ack(), 2000u);
  EXPECT_TRUE(p.has_flag(kTcpPsh));
  EXPECT_FALSE(p.has_flag(kTcpSyn));
  EXPECT_EQ(p.payload_len(), data.size());
  EXPECT_EQ(std::string(p.payload().begin(), p.payload().end()), data);
  EXPECT_EQ(p.timestamp().ns(), 123);
  EXPECT_EQ(p.wire_len(), kEthHeaderLen + 20 + 20 + data.size());
}

TEST(Packet, DecodesUdpDatagram) {
  const std::string data = "dns-query";
  FiveTuple t{0x0a000001, 0x0a000002, 5353, 53, kProtoUdp};
  Packet p = make_udp_packet(t, payload_of(data), Timestamp(5));
  ASSERT_TRUE(p.valid());
  EXPECT_TRUE(p.is_udp());
  EXPECT_EQ(p.tuple().dst_port, 53);
  EXPECT_EQ(p.payload_len(), data.size());
}

TEST(Packet, InvalidEtherTypeIsNotValid) {
  std::vector<std::uint8_t> junk(64, 0xab);
  Packet p = Packet::from_bytes(junk, Timestamp(0));
  EXPECT_FALSE(p.valid());
}

TEST(Packet, EmptyFrameSafe) {
  Packet p;
  EXPECT_FALSE(p.valid());
  EXPECT_EQ(p.capture_len(), 0u);
  EXPECT_TRUE(p.payload().empty());
}

TEST(Packet, SnappedKeepsWireLengths) {
  std::string data(1000, 'x');
  TcpSegmentSpec spec;
  spec.tuple = tuple();
  spec.payload = payload_of(data);
  Packet full = make_tcp_packet(spec, Timestamp(0));
  Packet snap = full.snapped(96);

  EXPECT_EQ(snap.capture_len(), 96u);
  EXPECT_EQ(snap.wire_len(), full.wire_len());
  ASSERT_TRUE(snap.valid());
  EXPECT_EQ(snap.tuple(), full.tuple());
  // Captured payload is clipped, wire payload preserved.
  EXPECT_EQ(snap.wire_payload_len(), 1000u);
  EXPECT_EQ(snap.payload_len(), 96u - (kEthHeaderLen + 20 + 20));
}

TEST(Packet, SnapShorterThanHeadersStillIpValid) {
  TcpSegmentSpec spec;
  spec.tuple = tuple();
  Packet full = make_tcp_packet(spec, Timestamp(0));
  Packet snap = full.snapped(34);  // eth + ip only
  EXPECT_EQ(snap.capture_len(), 34u);
  EXPECT_FALSE(snap.valid());  // TCP header missing
}

TEST(Packet, SharedFrameNotCopiedOnPacketCopy) {
  TcpSegmentSpec spec;
  spec.tuple = tuple();
  Packet p = make_tcp_packet(spec, Timestamp(0));
  Packet q = p;
  EXPECT_EQ(p.frame_buffer().get(), q.frame_buffer().get());
}

TEST(Packet, NonTcpUdpProtocolValidAtNetworkLayer) {
  // Craft an ICMP-ish packet by patching the protocol byte of a UDP frame.
  FiveTuple t{0x0a000001, 0x0a000002, 0, 0, kProtoUdp};
  auto frame = build_udp_frame(t, {});
  frame[kEthHeaderLen + 9] = kProtoIcmp;
  Packet p = Packet::from_bytes(frame, Timestamp(0));
  EXPECT_TRUE(p.valid());
  EXPECT_FALSE(p.is_tcp());
  EXPECT_FALSE(p.is_udp());
  EXPECT_EQ(p.tuple().src_port, 0);
}

}  // namespace
}  // namespace scap
