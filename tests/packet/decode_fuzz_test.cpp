// Decoder robustness: random and mutated bytes must never crash, read out
// of bounds, or produce inconsistent views. (Deterministic fuzz: fixed
// seeds, thousands of inputs.)
#include <gtest/gtest.h>

#include <vector>

#include "base/rng.hpp"
#include "packet/bpf.hpp"
#include "packet/craft.hpp"
#include "packet/packet.hpp"

namespace scap {
namespace {

void check_consistency(const Packet& p) {
  // Whatever decode produced, the accessors must be self-consistent.
  EXPECT_LE(p.payload_len(), p.capture_len());
  if (!p.frame().empty()) {
    auto pay = p.payload();
    if (!pay.empty()) {
      // Payload window inside the frame.
      EXPECT_GE(pay.data(), p.frame().data());
      EXPECT_LE(pay.data() + pay.size(), p.frame().data() + p.frame().size());
    }
  }
  if (!p.valid()) {
    EXPECT_TRUE(p.payload().empty());
  }
}

TEST(DecodeFuzz, RandomBytesNeverMisbehave) {
  Rng rng(0xf022);
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::uint8_t> bytes(rng.bounded(200));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u32());
    Packet p = Packet::from_bytes(bytes, Timestamp(0));
    check_consistency(p);
  }
}

TEST(DecodeFuzz, MutatedRealPacketsNeverMisbehave) {
  Rng rng(0xdead);
  TcpSegmentSpec spec;
  spec.tuple = {0x0a000001, 0x0a000002, 40000, 80, kProtoTcp};
  std::vector<std::uint8_t> payload(300, 0x41);
  spec.payload = payload;
  const auto base = build_tcp_frame(spec);

  for (int i = 0; i < 5000; ++i) {
    auto frame = base;
    // Flip 1-8 random bytes.
    const int flips = 1 + static_cast<int>(rng.bounded(8));
    for (int f = 0; f < flips; ++f) {
      frame[rng.bounded(frame.size())] ^=
          static_cast<std::uint8_t>(1 + rng.bounded(255));
    }
    // Occasionally truncate.
    if (rng.chance(0.3)) {
      frame.resize(rng.bounded(frame.size()) + 1);
    }
    Packet p = Packet::from_bytes(frame, Timestamp(0));
    check_consistency(p);
    // Snapping a mutant must also be safe.
    Packet s = p.snapped(static_cast<std::uint32_t>(1 + rng.bounded(100)));
    check_consistency(s);
  }
}

TEST(DecodeFuzz, BpfOnGarbageTuplesIsTotal) {
  // Filters must be total functions over arbitrary tuples.
  auto prog = BpfProgram::compile(
      "(tcp and portrange 1-1024) or (udp and not host 10.0.0.1)");
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    FiveTuple t{rng.next_u32(), rng.next_u32(),
                static_cast<std::uint16_t>(rng.next_u32()),
                static_cast<std::uint16_t>(rng.next_u32()),
                static_cast<std::uint8_t>(rng.next_u32())};
    (void)prog.matches(t);  // must not crash; result is data-dependent
  }
  SUCCEED();
}

TEST(DecodeFuzz, ParserRejectsGarbageFiltersGracefully) {
  Rng rng(99);
  static const char kChars[] = "tcpudportandrnot()0123456789./- ";
  int compiled = 0, rejected = 0;
  for (int i = 0; i < 2000; ++i) {
    std::string expr;
    const std::size_t len = rng.bounded(40);
    for (std::size_t c = 0; c < len; ++c) {
      expr += kChars[rng.bounded(sizeof(kChars) - 1)];
    }
    try {
      auto p = BpfProgram::compile(expr);
      ++compiled;  // some random strings are valid (e.g. "tcp")
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(compiled + rejected, 2000);
}

}  // namespace
}  // namespace scap
