// End-to-end integration: generator -> replayer -> NIC -> kernel -> events,
// validated against the generator's ground truth.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "bench/common/driver.hpp"
#include "bench/common/workloads.hpp"
#include "flowgen/replay.hpp"
#include "flowgen/workload.hpp"
#include "match/aho_corasick.hpp"
#include "match/corpus.hpp"

namespace scap::bench {
namespace {

flowgen::Trace patterned_trace(std::size_t flows, std::uint64_t seed) {
  flowgen::WorkloadConfig cfg;
  cfg.flows = flows;
  cfg.seed = seed;
  cfg.patterns = match::make_corpus({.pattern_count = 64});
  cfg.plant_probability = 0.4;
  return flowgen::build_trace(cfg);
}

TEST(PipelineIntegration, LowRateDeliversEverythingAndFindsAllPatterns) {
  const flowgen::Trace trace = patterned_trace(120, 5);
  const match::AhoCorasick ac(match::make_corpus({.pattern_count = 64}));

  ScapRunOptions opt;
  opt.kernel.memory_size = 1ull << 30;
  opt.automaton = &ac;
  RunResult r = run_scap(trace, 0.25, 1, opt);

  EXPECT_EQ(r.pkts_dropped, 0u);
  EXPECT_EQ(r.matches, trace.planted_matches);
  EXPECT_EQ(r.streams_with_data, directional_streams_with_data(trace));
}

TEST(PipelineIntegration, ByteExactDeliveryPerStream) {
  // Drive the kernel directly through a pipeline-like loop and compare the
  // reassembled bytes of every stream with a reference reconstruction.
  const flowgen::Trace trace = patterned_trace(60, 9);

  kernel::KernelConfig cfg;
  cfg.memory_size = 1ull << 30;
  kernel::ScapKernel k(cfg);
  std::map<std::string, std::string> delivered;
  auto drain = [&] {
    auto& q = k.events(0);
    while (!q.empty()) {
      kernel::Event ev = q.pop();
      if (ev.type == kernel::EventType::kData) {
        auto& s = delivered[to_string(ev.stream.tuple)];
        // Skip the overlap prefix when accumulating.
        s.append(ev.chunk.data.begin() + ev.chunk.overlap_len,
                 ev.chunk.data.end());
      }
      k.release_chunk(ev);
    }
  };
  for (const auto& pkt : trace.packets) {
    k.handle_packet(pkt, pkt.timestamp(), 0);
    drain();
  }
  k.terminate_all(trace.packets.back().timestamp());
  drain();

  // Reference: concatenate payloads in order per directional stream.
  std::map<std::string, std::string> expected;
  for (const auto& pkt : trace.packets) {
    if (pkt.payload_len() == 0) continue;
    expected[to_string(pkt.tuple())].append(
        reinterpret_cast<const char*>(pkt.payload().data()),
        pkt.payload_len());
  }
  ASSERT_EQ(delivered.size(), expected.size());
  for (const auto& [key, want] : expected) {
    EXPECT_EQ(delivered[key], want) << key;
  }
}

TEST(PipelineIntegration, OverloadDropsButKeepsStreamHeads) {
  const flowgen::Trace trace = patterned_trace(300, 11);
  const match::AhoCorasick ac(match::make_corpus({.pattern_count = 64}));

  ScapRunOptions opt;
  opt.kernel.memory_size = 8ull << 20;  // tight: forces PPL
  opt.kernel.ppl.base_threshold = 0.5;
  opt.kernel.ppl.overload_cutoff = 16 * 1024;
  opt.automaton = &ac;
  RunResult r = run_scap(trace, 6.0, 1, opt);

  EXPECT_GT(r.pkts_dropped, 0u);
  // Patterns live in stream heads; the overload cutoff protects them.
  EXPECT_GT(static_cast<double>(r.matches),
            0.7 * static_cast<double>(trace.planted_matches));
  // Few streams lost entirely.
  EXPECT_GT(static_cast<double>(r.streams_with_data),
            0.8 * static_cast<double>(directional_streams_with_data(trace)));
}

TEST(PipelineIntegration, ScapBeatsBaselineUnderOverload) {
  const flowgen::Trace trace = patterned_trace(300, 13);
  const match::AhoCorasick ac(match::make_corpus({.pattern_count = 64}));

  ScapRunOptions scap;
  scap.kernel.memory_size = 8ull << 20;
  scap.kernel.ppl.base_threshold = 0.5;
  scap.kernel.ppl.overload_cutoff = 16 * 1024;
  scap.automaton = &ac;
  RunResult r_scap = run_scap(trace, 6.0, 6, scap);

  BaselineRunOptions nids;
  nids.kind = BaselineKind::kLibnids;
  nids.automaton = &ac;
  // Ring scaled to the short replay window so sustained overload shows.
  nids.capture_ring_bytes = 2 << 20;
  RunResult r_nids = run_baseline(trace, 6.0, 6, nids);

  EXPECT_GT(r_scap.matches, r_nids.matches);
  EXPECT_GT(r_scap.streams_with_data, r_nids.streams_with_data);
}

TEST(PipelineIntegration, BaselineLowRateAlsoComplete) {
  const flowgen::Trace trace = patterned_trace(120, 17);
  const match::AhoCorasick ac(match::make_corpus({.pattern_count = 64}));

  BaselineRunOptions nids;
  nids.kind = BaselineKind::kLibnids;
  nids.automaton = &ac;
  RunResult r = run_baseline(trace, 0.25, 1, nids);
  EXPECT_EQ(r.pkts_dropped, 0u);
  EXPECT_EQ(r.matches, trace.planted_matches);
}

TEST(PipelineIntegration, YafTracksAllFlows) {
  const flowgen::Trace trace = patterned_trace(150, 19);
  BaselineRunOptions yaf;
  yaf.kind = BaselineKind::kYaf;
  RunResult r = run_baseline(trace, 0.25, 1, yaf);
  EXPECT_EQ(r.pkts_dropped, 0u);
  // Every flow tracked at least once. A flow can contribute a second short
  // record: the client FIN exports + removes it, then the server's own FIN
  // re-creates it briefly (YAF semantics).
  EXPECT_GE(r.streams_tracked, trace.flows.size());
  EXPECT_LE(r.streams_tracked, trace.flows.size() * 2);
}

TEST(PipelineIntegration, FdirReducesHostPackets) {
  const flowgen::Trace trace = patterned_trace(150, 23);
  ScapRunOptions base;
  base.kernel.defaults.cutoff_bytes = 0;
  base.kernel.creation_events = false;
  RunResult plain = run_scap(trace, 1.0, 1, base);
  ScapRunOptions fdir = base;
  fdir.use_fdir = true;
  RunResult offloaded = run_scap(trace, 1.0, 1, fdir);

  EXPECT_EQ(plain.pkts_nic_filtered, 0u);
  // With FDIR the majority of packets never reach the host.
  EXPECT_GT(offloaded.pkts_nic_filtered, offloaded.pkts_offered / 2);
  // Flow statistics still come out: all streams tracked.
  EXPECT_EQ(offloaded.streams_tracked, plain.streams_tracked);
}

TEST(PipelineIntegration, DropsIncreaseMonotonicallyWithRate) {
  const flowgen::Trace trace = patterned_trace(200, 29);
  double prev = -1.0;
  for (double rate : {1.0, 3.0, 6.0}) {
    BaselineRunOptions nids;
    nids.kind = BaselineKind::kLibnids;
    RunResult r = run_baseline(trace, rate, 2, nids);
    EXPECT_GE(r.drop_pct(), prev) << "rate " << rate;
    prev = r.drop_pct();
  }
}

TEST(PipelineIntegration, ImpairedTraceStillByteExactInStrictMode) {
  flowgen::WorkloadConfig cfg;
  cfg.flows = 60;
  cfg.seed = 31;
  cfg.duplicate_probability = 0.08;
  cfg.reorder_probability = 0.08;
  cfg.patterns = match::make_corpus({.pattern_count = 32});
  cfg.plant_probability = 0.5;
  const flowgen::Trace trace = flowgen::build_trace(cfg);
  const match::AhoCorasick ac(match::make_corpus({.pattern_count = 32}));

  ScapRunOptions opt;
  opt.kernel.defaults.mode = kernel::ReassemblyMode::kTcpStrict;
  opt.automaton = &ac;
  RunResult r = run_scap(trace, 0.25, 1, opt);
  EXPECT_EQ(r.matches, trace.planted_matches);
}

}  // namespace
}  // namespace scap::bench
