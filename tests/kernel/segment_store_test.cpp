#include "kernel/segment_store.hpp"

#include <gtest/gtest.h>

#include <string>

namespace scap::kernel {
namespace {

std::span<const std::uint8_t> bytes_of(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

std::string str_of(const std::vector<std::uint8_t>& v) {
  return std::string(v.begin(), v.end());
}

TEST(SegmentStore, InsertAndPopContiguous) {
  SegmentStore store;
  auto r = store.insert(0, bytes_of("hello"), OverlapPolicy::kBsd);
  EXPECT_EQ(r.new_bytes, 5u);
  EXPECT_EQ(r.dup_bytes, 0u);
  auto run = store.pop_contiguous(0);
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(str_of(*run), "hello");
  EXPECT_TRUE(store.empty());
}

TEST(SegmentStore, PopMergesAdjacentSegments) {
  SegmentStore store;
  store.insert(0, bytes_of("abc"), OverlapPolicy::kBsd);
  store.insert(3, bytes_of("def"), OverlapPolicy::kBsd);
  store.insert(6, bytes_of("ghi"), OverlapPolicy::kBsd);
  auto run = store.pop_contiguous(0);
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(str_of(*run), "abcdefghi");
}

TEST(SegmentStore, PopStopsAtGap) {
  SegmentStore store;
  store.insert(0, bytes_of("abc"), OverlapPolicy::kBsd);
  store.insert(5, bytes_of("xyz"), OverlapPolicy::kBsd);
  auto run = store.pop_contiguous(0);
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(str_of(*run), "abc");
  EXPECT_EQ(store.buffered_bytes(), 3u);
  EXPECT_EQ(*store.min_offset(), 5u);
}

TEST(SegmentStore, PopContiguousRequiresExactStart) {
  SegmentStore store;
  store.insert(5, bytes_of("abc"), OverlapPolicy::kBsd);
  EXPECT_FALSE(store.pop_contiguous(0).has_value());
  EXPECT_TRUE(store.pop_contiguous(5).has_value());
}

TEST(SegmentStore, ExactDuplicateCountsDup) {
  SegmentStore store;
  store.insert(0, bytes_of("abc"), OverlapPolicy::kBsd);
  auto r = store.insert(0, bytes_of("abc"), OverlapPolicy::kBsd);
  EXPECT_EQ(r.new_bytes, 0u);
  EXPECT_EQ(r.dup_bytes, 3u);
  EXPECT_FALSE(r.conflict);
  EXPECT_EQ(store.buffered_bytes(), 3u);
}

TEST(SegmentStore, ConflictDetectedWhenOverlapDisagrees) {
  SegmentStore store;
  store.insert(0, bytes_of("abc"), OverlapPolicy::kFirst);
  auto r = store.insert(0, bytes_of("xyz"), OverlapPolicy::kFirst);
  EXPECT_TRUE(r.conflict);
}

TEST(SegmentStore, FirstPolicyKeepsOriginal) {
  SegmentStore store;
  store.insert(0, bytes_of("AAAA"), OverlapPolicy::kFirst);
  store.insert(2, bytes_of("BBBB"), OverlapPolicy::kFirst);
  auto run = store.pop_contiguous(0);
  // Overlap [2,4) keeps 'AA'; new bytes [4,6) filled with 'BB'.
  EXPECT_EQ(str_of(*run), "AAAABB");
}

TEST(SegmentStore, LastPolicyTakesNewData) {
  SegmentStore store;
  store.insert(0, bytes_of("AAAA"), OverlapPolicy::kLast);
  store.insert(2, bytes_of("BBBB"), OverlapPolicy::kLast);
  auto run = store.pop_contiguous(0);
  EXPECT_EQ(str_of(*run), "AABBBB");
}

TEST(SegmentStore, BsdPolicyNewWinsOnlyWhenStartingEarlier) {
  {
    // New segment starts after existing: existing wins the overlap.
    SegmentStore store;
    store.insert(0, bytes_of("AAAA"), OverlapPolicy::kBsd);
    store.insert(2, bytes_of("BBBB"), OverlapPolicy::kBsd);
    EXPECT_EQ(str_of(*store.pop_contiguous(0)), "AAAABB");
  }
  {
    // New segment starts before existing: new wins the overlap.
    SegmentStore store;
    store.insert(2, bytes_of("AAAA"), OverlapPolicy::kBsd);
    store.insert(0, bytes_of("BBBB"), OverlapPolicy::kBsd);
    EXPECT_EQ(str_of(*store.pop_contiguous(0)), "BBBBAA");
  }
}

TEST(SegmentStore, LinuxPolicyRequiresFullEngulf) {
  {
    // New starts before but does NOT cover the old end: old wins overlap.
    SegmentStore store;
    store.insert(2, bytes_of("AAAA"), OverlapPolicy::kLinux);  // [2,6)
    store.insert(0, bytes_of("BBBB"), OverlapPolicy::kLinux);  // [0,4)
    EXPECT_EQ(str_of(*store.pop_contiguous(0)), "BBAAAA");
  }
  {
    // New fully engulfs the old segment: new wins.
    SegmentStore store;
    store.insert(2, bytes_of("AA"), OverlapPolicy::kLinux);      // [2,4)
    store.insert(0, bytes_of("BBBBBB"), OverlapPolicy::kLinux);  // [0,6)
    EXPECT_EQ(str_of(*store.pop_contiguous(0)), "BBBBBB");
  }
}

TEST(SegmentStore, PoliciesDivergeOnShankarPaxsonPattern) {
  // The classic evasion: two different payloads for the same range produce
  // policy-dependent reconstructions — exactly why target-based reassembly
  // exists.
  std::string first_wins, last_wins;
  {
    SegmentStore s;
    s.insert(0, bytes_of("ATTACK"), OverlapPolicy::kFirst);
    s.insert(0, bytes_of("BENIGN"), OverlapPolicy::kFirst);
    first_wins = str_of(*s.pop_contiguous(0));
  }
  {
    SegmentStore s;
    s.insert(0, bytes_of("ATTACK"), OverlapPolicy::kLast);
    s.insert(0, bytes_of("BENIGN"), OverlapPolicy::kLast);
    last_wins = str_of(*s.pop_contiguous(0));
  }
  EXPECT_EQ(first_wins, "ATTACK");
  EXPECT_EQ(last_wins, "BENIGN");
}

TEST(SegmentStore, NewSegmentBridgingTwoOldOnes) {
  SegmentStore store;
  store.insert(0, bytes_of("AA"), OverlapPolicy::kFirst);   // [0,2)
  store.insert(4, bytes_of("CC"), OverlapPolicy::kFirst);   // [4,6)
  auto r = store.insert(1, bytes_of("bbbb"), OverlapPolicy::kFirst);  // [1,5)
  EXPECT_EQ(r.new_bytes, 2u);   // fills the gap [2,4)
  EXPECT_EQ(r.dup_bytes, 2u);   // overlaps one byte each side
  EXPECT_EQ(str_of(*store.pop_contiguous(0)), "AAbbCC");
  EXPECT_TRUE(store.empty());
}

TEST(SegmentStore, PopFrontReturnsLowestOffset) {
  SegmentStore store;
  store.insert(10, bytes_of("bb"), OverlapPolicy::kBsd);
  store.insert(2, bytes_of("aa"), OverlapPolicy::kBsd);
  auto seg = store.pop_front();
  ASSERT_TRUE(seg.has_value());
  EXPECT_EQ(seg->first, 2u);
  EXPECT_EQ(str_of(seg->second), "aa");
  EXPECT_EQ(store.buffered_bytes(), 2u);
}

TEST(SegmentStore, EmptyInsertIsNoop) {
  SegmentStore store;
  auto r = store.insert(0, {}, OverlapPolicy::kBsd);
  EXPECT_EQ(r.new_bytes, 0u);
  EXPECT_TRUE(store.empty());
}

TEST(SegmentStore, ByteAccountingConsistent) {
  SegmentStore store;
  store.insert(0, bytes_of("aaaa"), OverlapPolicy::kBsd);
  store.insert(8, bytes_of("bbbb"), OverlapPolicy::kBsd);
  store.insert(2, bytes_of("cccc"), OverlapPolicy::kBsd);  // merges with first
  EXPECT_EQ(store.buffered_bytes(), 10u);  // [0,6) + [8,12)
  store.clear();
  EXPECT_EQ(store.buffered_bytes(), 0u);
  EXPECT_TRUE(store.empty());
}

}  // namespace
}  // namespace scap::kernel
