// IPv4 defragmentation tests, including the fragment-overlap evasion cases
// strict mode exists to defeat.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernel/defrag.hpp"
#include "kernel/module.hpp"
#include "packet/checksum.hpp"
#include "packet/craft.hpp"
#include "tests/kernel/test_helpers.hpp"

namespace scap::kernel {
namespace {

/// Build a UDP datagram and slice it into IP fragments of `frag_size`
/// payload bytes each (frag_size must be a multiple of 8).
std::vector<Packet> fragment_udp(const FiveTuple& tuple,
                                 const std::string& payload,
                                 std::uint16_t ip_id, std::size_t frag_size,
                                 Timestamp ts) {
  auto full = build_udp_frame(
      tuple, {reinterpret_cast<const std::uint8_t*>(payload.data()),
              payload.size()});
  // The IP payload (UDP header + data) to slice.
  const std::size_t ip_payload_len = 8 + payload.size();
  const std::uint8_t* ip_payload = full.data() + kEthHeaderLen + 20;

  std::vector<Packet> frags;
  for (std::size_t off = 0; off < ip_payload_len; off += frag_size) {
    const std::size_t len = std::min(frag_size, ip_payload_len - off);
    const bool more = off + len < ip_payload_len;
    std::vector<std::uint8_t> frame(kEthHeaderLen + 20 + len);
    EthHeader eth{};
    eth.ether_type = kEtherTypeIpv4;
    write_eth(frame, eth);
    Ipv4Header ip{};
    ip.version = 4;
    ip.ihl = 5;
    ip.total_len = static_cast<std::uint16_t>(20 + len);
    ip.id = ip_id;
    ip.frag_off =
        static_cast<std::uint16_t>((more ? 0x2000 : 0) | (off / 8));
    ip.ttl = 64;
    ip.protocol = kProtoUdp;
    ip.src_ip = tuple.src_ip;
    ip.dst_ip = tuple.dst_ip;
    write_ipv4(std::span<std::uint8_t>(frame).subspan(kEthHeaderLen), ip);
    const std::uint16_t csum = internet_checksum(
        std::span<const std::uint8_t>(frame).subspan(kEthHeaderLen, 20));
    frame[kEthHeaderLen + 10] = static_cast<std::uint8_t>(csum >> 8);
    frame[kEthHeaderLen + 11] = static_cast<std::uint8_t>(csum & 0xff);
    std::copy(ip_payload + off, ip_payload + off + len,
              frame.begin() + kEthHeaderLen + 20);
    frags.push_back(Packet::from_bytes(frame, ts));
  }
  return frags;
}

FiveTuple udp_tuple() {
  return {0x0a000001, 0x0a000002, 5000, 53, kProtoUdp};
}

TEST(Defrag, InOrderReassembly) {
  IpDefragmenter defrag;
  const std::string payload(200, 'd');
  auto frags = fragment_udp(udp_tuple(), payload, 7, 64, Timestamp(0));
  ASSERT_GE(frags.size(), 3u);
  std::optional<Packet> done;
  for (std::size_t i = 0; i < frags.size(); ++i) {
    done = defrag.feed(frags[i], Timestamp(0));
    if (i + 1 < frags.size()) {
      EXPECT_FALSE(done.has_value());
    }
  }
  ASSERT_TRUE(done.has_value());
  ASSERT_TRUE(done->valid());
  EXPECT_TRUE(done->is_udp());
  EXPECT_FALSE(done->is_ip_fragment());
  EXPECT_EQ(done->tuple(), udp_tuple());
  EXPECT_EQ(std::string(done->payload().begin(), done->payload().end()),
            payload);
  EXPECT_EQ(defrag.stats().datagrams_completed, 1u);
  EXPECT_EQ(defrag.pending(), 0u);
  EXPECT_EQ(defrag.buffered_bytes(), 0u);
}

TEST(Defrag, OutOfOrderReassembly) {
  IpDefragmenter defrag;
  const std::string payload(300, 'x');
  auto frags = fragment_udp(udp_tuple(), payload, 9, 64, Timestamp(0));
  // Feed in reverse.
  std::optional<Packet> done;
  for (auto it = frags.rbegin(); it != frags.rend(); ++it) {
    done = defrag.feed(*it, Timestamp(0));
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(std::string(done->payload().begin(), done->payload().end()),
            payload);
}

TEST(Defrag, InterleavedDatagramsKeptSeparate) {
  IpDefragmenter defrag;
  const std::string pay_a(120, 'a');
  const std::string pay_b(120, 'b');
  auto fa = fragment_udp(udp_tuple(), pay_a, 1, 64, Timestamp(0));
  auto fb = fragment_udp(udp_tuple(), pay_b, 2, 64, Timestamp(0));
  std::vector<std::string> results;
  for (std::size_t i = 0; i < std::max(fa.size(), fb.size()); ++i) {
    if (i < fa.size()) {
      if (auto d = defrag.feed(fa[i], Timestamp(0))) {
        results.emplace_back(d->payload().begin(), d->payload().end());
      }
    }
    if (i < fb.size()) {
      if (auto d = defrag.feed(fb[i], Timestamp(0))) {
        results.emplace_back(d->payload().begin(), d->payload().end());
      }
    }
  }
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NE(results[0], results[1]);
}

TEST(Defrag, NonFragmentPassesThrough) {
  IpDefragmenter defrag;
  Packet p = make_udp_packet(udp_tuple(),
                             {reinterpret_cast<const std::uint8_t*>("hi"), 2},
                             Timestamp(0));
  auto out = defrag.feed(p, Timestamp(0));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->frame_buffer().get(), p.frame_buffer().get());
  EXPECT_EQ(defrag.stats().fragments_seen, 0u);
}

TEST(Defrag, IncompleteDatagramExpires) {
  IpDefragmenter defrag;
  auto frags = fragment_udp(udp_tuple(), std::string(200, 'e'), 3, 64,
                            Timestamp(0));
  defrag.feed(frags[0], Timestamp(0));
  EXPECT_EQ(defrag.pending(), 1u);
  defrag.expire(Timestamp::from_sec(60));
  EXPECT_EQ(defrag.pending(), 0u);
  EXPECT_EQ(defrag.stats().datagrams_expired, 1u);
  EXPECT_EQ(defrag.buffered_bytes(), 0u);
}

TEST(Defrag, TeardropOverflowRejected) {
  IpDefragmenter defrag;
  auto frags = fragment_udp(udp_tuple(), std::string(64, 't'), 4, 64,
                            Timestamp(0));
  // Forge an absurd fragment offset (past 64KB).
  auto frame = std::vector<std::uint8_t>(frags[0].frame().begin(),
                                         frags[0].frame().end());
  frame[kEthHeaderLen + 6] = 0x1f;
  frame[kEthHeaderLen + 7] = 0xff;  // offset 8191*8 = 65528
  Packet evil = Packet::from_bytes(frame, Timestamp(0));
  auto out = defrag.feed(evil, Timestamp(0));
  EXPECT_FALSE(out.has_value());
  EXPECT_EQ(defrag.stats().fragments_dropped_overload, 1u);
}

TEST(Defrag, MemoryCapBoundsFragmentFlood) {
  IpDefragmenter::Config cfg;
  cfg.max_buffered_bytes = 10 * 1024;
  IpDefragmenter defrag(cfg);
  // Flood with first-fragments of distinct datagrams that never complete.
  for (std::uint16_t id = 0; id < 200; ++id) {
    auto frags = fragment_udp(udp_tuple(), std::string(500, 'f'), id, 256,
                              Timestamp(0));
    defrag.feed(frags[0], Timestamp(0));
  }
  EXPECT_LE(defrag.buffered_bytes(), 10 * 1024u);
  EXPECT_GT(defrag.stats().fragments_dropped_overload, 0u);
}

TEST(Defrag, KernelEndToEndWithFragmentedDatagram) {
  KernelConfig cfg;
  cfg.memory_size = 1 << 20;
  cfg.defragment_ip = true;
  ScapKernel k(cfg);
  const std::string payload(500, 'k');
  auto frags = fragment_udp(udp_tuple(), payload, 21, 128, Timestamp(0));
  PacketOutcome out;
  for (const auto& f : frags) {
    out = k.handle_packet(f, Timestamp(0));
  }
  // The final fragment completed the datagram and stored the payload.
  EXPECT_EQ(out.verdict, Verdict::kStored);
  k.terminate_all(Timestamp(1));
  std::string delivered;
  auto& q = k.events(0);
  while (!q.empty()) {
    auto ev = q.pop();
    if (ev.type == EventType::kData) {
      delivered.append(ev.chunk.data.begin(), ev.chunk.data.end());
    }
    k.release_chunk(ev);
  }
  EXPECT_EQ(delivered, payload);
}

}  // namespace
}  // namespace scap::kernel
