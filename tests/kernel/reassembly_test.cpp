#include "kernel/reassembly.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>

namespace scap::kernel {
namespace {

std::span<const std::uint8_t> bytes_of(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

std::string str_of(const std::vector<std::uint8_t>& v) {
  return std::string(v.begin(), v.end());
}

StreamParams params(ReassemblyMode mode, std::uint32_t chunk = 64,
                    std::uint32_t overlap = 0) {
  StreamParams p;
  p.mode = mode;
  p.chunk_size = chunk;
  p.overlap_size = overlap;
  return p;
}

SegmentMeta meta_at(std::int64_t us, std::uint32_t seq = 0) {
  SegmentMeta m;
  m.ts = Timestamp::from_usec(us);
  m.seq_raw = seq;
  return m;
}

// --- ChunkBuilder -----------------------------------------------------------

TEST(ChunkBuilder, AccumulatesUntilChunkSize) {
  ChunkBuilder b(8, 0, false);
  auto done = b.append(bytes_of("abc"), meta_at(0), 0);
  EXPECT_TRUE(done.empty());
  done = b.append(bytes_of("defgh"), meta_at(1), 3);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(str_of(done[0].data), "abcdefgh");
  EXPECT_EQ(done[0].stream_offset, 0u);
  EXPECT_FALSE(b.has_data());
}

TEST(ChunkBuilder, SplitsLargePayloadAcrossChunks) {
  ChunkBuilder b(4, 0, false);
  auto done = b.append(bytes_of("0123456789"), meta_at(0), 0);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(str_of(done[0].data), "0123");
  EXPECT_EQ(str_of(done[1].data), "4567");
  EXPECT_EQ(done[1].stream_offset, 4u);
  auto rest = b.flush();
  ASSERT_TRUE(rest.has_value());
  EXPECT_EQ(str_of(rest->data), "89");
  EXPECT_EQ(rest->stream_offset, 8u);
}

TEST(ChunkBuilder, OverlapCarriesTailIntoNextChunk) {
  ChunkBuilder b(8, 3, false);
  auto done = b.append(bytes_of("abcdefgh"), meta_at(0), 0);
  ASSERT_EQ(done.size(), 1u);
  // Next chunk starts pre-seeded with "fgh".
  done = b.append(bytes_of("ijklm"), meta_at(1), 8);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(str_of(done[0].data), "fghijklm");
  EXPECT_EQ(done[0].overlap_len, 3u);
  EXPECT_EQ(done[0].stream_offset, 5u);  // 8 - overlap
}

TEST(ChunkBuilder, FlushEmptyReturnsNullopt) {
  ChunkBuilder b(8, 0, false);
  EXPECT_FALSE(b.flush().has_value());
}

TEST(ChunkBuilder, PureOverlapChunkNotDelivered) {
  ChunkBuilder b(4, 2, false);
  b.append(bytes_of("abcd"), meta_at(0), 0);  // completes, seeds "cd"
  auto flushed = b.flush();
  EXPECT_FALSE(flushed.has_value());  // only the repeated tail: no new bytes
}

TEST(ChunkBuilder, ErrorsAttachToCurrentChunk) {
  ChunkBuilder b(8, 0, false);
  b.append(bytes_of("abc"), meta_at(0), 0);
  b.flag_error(kErrHole);
  auto flushed = b.flush();
  ASSERT_TRUE(flushed.has_value());
  EXPECT_EQ(flushed->errors & kErrHole, kErrHole);
  // Next chunk starts clean.
  b.append(bytes_of("x"), meta_at(1), 3);
  auto next = b.flush();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->errors, 0u);
}

TEST(ChunkBuilder, PacketRecordsTrackOffsets) {
  ChunkBuilder b(100, 0, true);
  SegmentMeta m1 = meta_at(10, 1000);
  m1.wire_payload = 3;
  b.append(bytes_of("abc"), m1, 0);
  SegmentMeta m2 = meta_at(20, 1003);
  m2.wire_payload = 5;
  b.append(bytes_of("defgh"), m2, 3);
  auto c = b.flush();
  ASSERT_TRUE(c.has_value());
  ASSERT_EQ(c->packets.size(), 2u);
  EXPECT_EQ(c->packets[0].chunk_offset, 0u);
  EXPECT_EQ(c->packets[0].caplen, 3u);
  EXPECT_EQ(c->packets[0].ts.usec(), 10);
  EXPECT_EQ(c->packets[1].chunk_offset, 3u);
  EXPECT_EQ(c->packets[1].seq, 1003u);
}

TEST(ChunkBuilder, RetainMergesKeptChunkWithNext) {
  ChunkBuilder b(4, 0, false);
  auto done = b.append(bytes_of("abcd"), meta_at(0), 0);
  ASSERT_EQ(done.size(), 1u);
  b.retain(std::move(done[0]));
  done = b.append(bytes_of("efgh"), meta_at(1), 4);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(str_of(done[0].data), "abcdefgh");
}

TEST(ChunkBuilder, RetainMergeShiftsPacketRecordOffsets) {
  ChunkBuilder b(4, 0, true);
  SegmentMeta m1 = meta_at(10, 1000);
  m1.wire_payload = 4;
  auto done = b.append(bytes_of("abcd"), m1, 0);
  ASSERT_EQ(done.size(), 1u);
  b.retain(std::move(done[0]));
  // The next chunk completes from two segments; its packet records are
  // relative to that chunk and must be shifted by the retained prefix.
  SegmentMeta m2 = meta_at(20, 1004);
  m2.wire_payload = 2;
  b.append(bytes_of("ef"), m2, 4);
  SegmentMeta m3 = meta_at(30, 1006);
  m3.wire_payload = 2;
  done = b.append(bytes_of("gh"), m3, 6);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(str_of(done[0].data), "abcdefgh");
  ASSERT_EQ(done[0].packets.size(), 3u);
  EXPECT_EQ(done[0].packets[0].chunk_offset, 0u);  // retained chunk's record
  EXPECT_EQ(done[0].packets[1].chunk_offset, 4u);  // "ef", shifted by prefix
  EXPECT_EQ(done[0].packets[2].chunk_offset, 6u);  // "gh", shifted by prefix
  EXPECT_EQ(done[0].packets[1].seq, 1004u);
  EXPECT_EQ(done[0].packets[2].seq, 1006u);
}

// --- TcpReassembler: fast mode ----------------------------------------------

TEST(TcpReassemblerFast, InOrderDelivery) {
  TcpReassembler r(params(ReassemblyMode::kTcpFast, 1024), false);
  r.on_syn(999);  // data starts at 1000
  auto res = r.on_data(1000, bytes_of("hello "), meta_at(0));
  EXPECT_EQ(res.accepted_bytes, 6u);
  res = r.on_data(1006, bytes_of("world"), meta_at(1));
  EXPECT_EQ(res.accepted_bytes, 5u);
  auto chunks = r.flush();
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(str_of(chunks[0].data), "hello world");
  EXPECT_EQ(chunks[0].errors, 0u);
}

TEST(TcpReassemblerFast, RetransmissionDiscarded) {
  TcpReassembler r(params(ReassemblyMode::kTcpFast, 1024), false);
  r.on_syn(0);
  r.on_data(1, bytes_of("abcdef"), meta_at(0));
  auto res = r.on_data(1, bytes_of("abcdef"), meta_at(1));
  EXPECT_EQ(res.accepted_bytes, 0u);
  EXPECT_EQ(res.dup_bytes, 6u);
  auto chunks = r.flush();
  EXPECT_EQ(str_of(chunks[0].data), "abcdef");
}

TEST(TcpReassemblerFast, PartialOverlapTrimmed) {
  TcpReassembler r(params(ReassemblyMode::kTcpFast, 1024), false);
  r.on_syn(0);
  r.on_data(1, bytes_of("abcdef"), meta_at(0));
  // Segment re-sends "def" and adds "ghi".
  auto res = r.on_data(4, bytes_of("defghi"), meta_at(1));
  EXPECT_EQ(res.accepted_bytes, 3u);
  EXPECT_EQ(res.dup_bytes, 3u);
  auto chunks = r.flush();
  EXPECT_EQ(str_of(chunks[0].data), "abcdefghi");
}

TEST(TcpReassemblerFast, HoleWrittenThroughAndFlagged) {
  TcpReassembler r(params(ReassemblyMode::kTcpFast, 1024), false);
  r.on_syn(0);
  r.on_data(1, bytes_of("abc"), meta_at(0));
  // Segment at offset 10 — bytes [3,10) lost.
  auto res = r.on_data(11, bytes_of("xyz"), meta_at(1));
  EXPECT_EQ(res.errors & kErrHole, kErrHole);
  EXPECT_EQ(res.accepted_bytes, 3u);
  auto chunks = r.flush();
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(str_of(chunks[0].data), "abcxyz");  // hole skipped, not padded
  EXPECT_EQ(chunks[0].errors & kErrHole, kErrHole);
  EXPECT_EQ(r.stream_offset(), 13u);  // offset advanced past the hole
}

TEST(TcpReassemblerFast, LateSegmentAfterHoleIsDuplicate) {
  TcpReassembler r(params(ReassemblyMode::kTcpFast, 1024), false);
  r.on_syn(0);
  r.on_data(1, bytes_of("abc"), meta_at(0));
  r.on_data(11, bytes_of("xyz"), meta_at(1));  // hole [3,10)
  // The missing segment finally arrives — too late in fast mode.
  auto res = r.on_data(4, bytes_of("1234567"), meta_at(2));
  EXPECT_EQ(res.accepted_bytes, 0u);
  EXPECT_EQ(res.dup_bytes, 7u);
}

TEST(TcpReassemblerFast, MidFlowPickupAnchorsAtFirstSegment) {
  TcpReassembler r(params(ReassemblyMode::kTcpFast, 1024), false);
  // No SYN observed; first data seg anchors offset 0.
  auto res = r.on_data(777777, bytes_of("data"), meta_at(0));
  EXPECT_EQ(res.accepted_bytes, 4u);
  EXPECT_EQ(r.stream_offset(), 4u);
}

TEST(TcpReassemblerFast, SequenceWraparound) {
  TcpReassembler r(params(ReassemblyMode::kTcpFast, 1024), false);
  const std::uint32_t isn = 0xfffffff0;
  r.on_syn(isn);  // data starts at 0xfffffff1
  std::string a(20, 'a');
  auto res = r.on_data(isn + 1, bytes_of(a), meta_at(0));  // wraps past 0
  EXPECT_EQ(res.accepted_bytes, 20u);
  auto res2 = r.on_data(isn + 21, bytes_of("bb"), meta_at(1));
  EXPECT_EQ(res2.accepted_bytes, 2u);
  EXPECT_EQ(r.stream_offset(), 22u);
  auto chunks = r.flush();
  EXPECT_EQ(chunks[0].data.size(), 22u);
}

TEST(TcpReassemblerFast, AbsurdJumpRejected) {
  TcpReassembler r(params(ReassemblyMode::kTcpFast, 1024), false);
  r.on_syn(0);
  r.on_data(1, bytes_of("abc"), meta_at(0));
  auto res = r.on_data(0x7f000000, bytes_of("zzz"), meta_at(1));
  EXPECT_EQ(res.accepted_bytes, 0u);
  EXPECT_EQ(res.errors & kErrInvalidSeq, kErrInvalidSeq);
}

// --- TcpReassembler: strict mode --------------------------------------------

TEST(TcpReassemblerStrict, ReordersOutOfOrderSegments) {
  TcpReassembler r(params(ReassemblyMode::kTcpStrict, 1024), false);
  r.on_syn(0);
  auto res1 = r.on_data(4, bytes_of("def"), meta_at(0));  // future
  EXPECT_TRUE(res1.completed.empty());
  EXPECT_EQ(r.ooo_buffered(), 3u);
  auto res2 = r.on_data(1, bytes_of("abc"), meta_at(1));  // fills the hole
  EXPECT_EQ(res2.accepted_bytes, 3u);
  auto chunks = r.flush();
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(str_of(chunks[0].data), "abcdef");
  EXPECT_EQ(chunks[0].errors, 0u);
  EXPECT_EQ(r.ooo_buffered(), 0u);
}

TEST(TcpReassemblerStrict, HeavyReorderingReconstructsExactly) {
  TcpReassembler r(params(ReassemblyMode::kTcpStrict, 4096), false);
  r.on_syn(0);
  // Segments delivered in a scrambled order.
  const std::string text = "the quick brown fox jumps over the lazy dog!!";
  const std::size_t seg = 5;
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < text.size(); i += seg) order.push_back(i);
  // Deterministic scramble.
  for (std::size_t i = 0; i + 1 < order.size(); i += 2) {
    std::swap(order[i], order[i + 1]);
  }
  for (std::size_t off : order) {
    const std::string piece = text.substr(off, seg);
    r.on_data(static_cast<std::uint32_t>(1 + off), bytes_of(piece),
              meta_at(static_cast<std::int64_t>(off)));
  }
  auto chunks = r.flush();
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(str_of(chunks[0].data), text);
}

TEST(TcpReassemblerStrict, FlushDeliversBufferedWithHoleFlag) {
  TcpReassembler r(params(ReassemblyMode::kTcpStrict, 1024), false);
  r.on_syn(0);
  r.on_data(1, bytes_of("abc"), meta_at(0));
  r.on_data(10, bytes_of("xyz"), meta_at(1));  // [9..] buffered, hole [3,9)
  auto chunks = r.flush();
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(str_of(chunks[0].data), "abcxyz");
  EXPECT_EQ(chunks[0].errors & kErrHole, kErrHole);
}

TEST(TcpReassemblerStrict, OverlapConflictFlagged) {
  TcpReassembler r(params(ReassemblyMode::kTcpStrict, 1024), false);
  r.on_syn(0);
  r.on_data(5, bytes_of("AAAA"), meta_at(0));  // buffered at off 4
  auto res = r.on_data(5, bytes_of("BBBB"), meta_at(1));
  EXPECT_EQ(res.errors & kErrOverlapConflict, kErrOverlapConflict);
}

TEST(TcpReassemblerStrict, OooBufferOverflowDegradesGracefully) {
  TcpReassembler r(params(ReassemblyMode::kTcpStrict, 1 << 20), false,
                   /*max_ooo_bytes=*/1024);
  r.on_syn(0);
  // Never send offset 0; flood with disjoint future segments.
  std::string block(128, 'x');
  std::uint32_t seq = 101;
  std::uint32_t all_errors = 0;
  for (int i = 0; i < 20; ++i) {
    auto res = r.on_data(seq, bytes_of(block), meta_at(i));
    all_errors |= res.errors;
    seq += 256;  // leave holes so nothing merges
  }
  EXPECT_EQ(all_errors & kErrBufferOverflow, kErrBufferOverflow);
  EXPECT_LE(r.ooo_buffered(), 1024u);
  // Data was force-delivered rather than silently dropped.
  auto chunks = r.flush();
  std::size_t delivered = 0;
  for (const auto& c : chunks) delivered += c.data.size();
  EXPECT_GT(delivered, 1024u);
}

TEST(TcpReassemblerStrict, PolicyAppliedToBufferedOverlaps) {
  for (auto policy : {OverlapPolicy::kFirst, OverlapPolicy::kLast}) {
    StreamParams p = params(ReassemblyMode::kTcpStrict, 1024);
    p.policy = policy;
    TcpReassembler r(p, false);
    r.on_syn(0);
    r.on_data(5, bytes_of("ATTACK"), meta_at(0));
    r.on_data(5, bytes_of("BENIGN"), meta_at(1));
    r.on_data(1, bytes_of("head"), meta_at(2));
    auto chunks = r.flush();
    ASSERT_EQ(chunks.size(), 1u);
    const std::string expected =
        policy == OverlapPolicy::kFirst ? "headATTACK" : "headBENIGN";
    EXPECT_EQ(str_of(chunks[0].data), expected);
  }
}

// --- UDP / datagram path ----------------------------------------------------

TEST(TcpReassembler, DatagramsConcatenate) {
  TcpReassembler r(params(ReassemblyMode::kTcpFast, 1024), false);
  r.on_datagram(bytes_of("q1"), meta_at(0));
  r.on_datagram(bytes_of("q2"), meta_at(1));
  auto chunks = r.flush();
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(str_of(chunks[0].data), "q1q2");
  EXPECT_EQ(r.stream_offset(), 4u);
}

// --- Parameterized sweep: chunk sizes ---------------------------------------

class ChunkSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ChunkSizeSweep, AllBytesDeliveredExactlyOnce) {
  const std::uint32_t chunk_size = GetParam();
  StreamParams p = params(ReassemblyMode::kTcpFast, chunk_size);
  TcpReassembler r(p, false);
  r.on_syn(0);
  std::string text;
  for (int i = 0; i < 100; ++i) {
    text += "segment-" + std::to_string(i) + "|";
  }
  std::vector<Chunk> all;
  std::size_t pos = 0;
  std::uint32_t seq = 1;
  while (pos < text.size()) {
    const std::size_t n = std::min<std::size_t>(37, text.size() - pos);
    auto res = r.on_data(seq, bytes_of(text.substr(pos, n)),
                         meta_at(static_cast<std::int64_t>(pos)));
    for (auto& c : res.completed) all.push_back(std::move(c));
    pos += n;
    seq += static_cast<std::uint32_t>(n);
  }
  for (auto& c : r.flush()) all.push_back(std::move(c));
  std::string got;
  for (const auto& c : all) {
    got.append(c.data.begin() + c.overlap_len, c.data.end());
  }
  EXPECT_EQ(got, text);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChunkSizeSweep,
                         ::testing::Values(1, 7, 64, 512, 4096, 16384));

}  // namespace
}  // namespace scap::kernel
