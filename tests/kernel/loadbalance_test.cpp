// Dynamic FDIR load balancing (paper §2.4): streams RSS-hashed onto an
// overloaded core are steered to the least-loaded one.
#include <gtest/gtest.h>

#include "kernel/module.hpp"
#include "tests/kernel/test_helpers.hpp"

namespace scap::kernel {
namespace {

using testing::SessionBuilder;
using testing::client_tuple;

KernelConfig lb_config(int cores) {
  KernelConfig cfg;
  cfg.memory_size = 8 << 20;
  cfg.num_cores = cores;
  cfg.dynamic_load_balance = true;
  cfg.imbalance_threshold = 0.25;
  cfg.imbalance_min_streams = 8;
  cfg.creation_events = false;
  return cfg;
}

TEST(LoadBalance, SteersStreamsOffOverloadedCore) {
  nic::Nic nic(4);
  ScapKernel k(lb_config(4), &nic);
  Timestamp t(0);
  // Simulate skewed RSS: every stream lands on core 0.
  for (std::uint16_t i = 0; i < 100; ++i) {
    SessionBuilder s(client_tuple(static_cast<std::uint16_t>(1000 + i), 80));
    k.handle_packet(s.syn(t), t, /*core=*/0);
  }
  EXPECT_GT(k.stats().streams_rebalanced, 0u);
  EXPECT_GT(nic.fdir().size(), 0u);

  // Steered streams' filters actually redirect their packets at the NIC.
  bool steered_seen = false;
  for (std::uint16_t i = 0; i < 100; ++i) {
    SessionBuilder s(client_tuple(static_cast<std::uint16_t>(1000 + i), 80));
    s.syn(t);  // advance builder past the SYN
    Packet data = s.data("x", t);
    auto rx = nic.receive(data);
    if (rx.disposition == nic::RxDisposition::kToQueue && rx.queue != 0) {
      steered_seen = true;
    }
  }
  EXPECT_TRUE(steered_seen);
}

TEST(LoadBalance, NoRebalanceBelowMinStreams) {
  nic::Nic nic(4);
  KernelConfig cfg = lb_config(4);
  cfg.imbalance_min_streams = 1000;
  ScapKernel k(cfg, &nic);
  Timestamp t(0);
  for (std::uint16_t i = 0; i < 100; ++i) {
    SessionBuilder s(client_tuple(static_cast<std::uint16_t>(1000 + i), 80));
    k.handle_packet(s.syn(t), t, 0);
  }
  EXPECT_EQ(k.stats().streams_rebalanced, 0u);
}

TEST(LoadBalance, BalancedInputNotTouched) {
  nic::Nic nic(4);
  ScapKernel k(lb_config(4), &nic);
  Timestamp t(0);
  // Streams spread evenly by the caller (as good RSS would).
  for (std::uint16_t i = 0; i < 100; ++i) {
    SessionBuilder s(client_tuple(static_cast<std::uint16_t>(1000 + i), 80));
    k.handle_packet(s.syn(t), t, i % 4);
  }
  EXPECT_EQ(k.stats().streams_rebalanced, 0u);
  EXPECT_EQ(nic.fdir().size(), 0u);
}

TEST(LoadBalance, SteeringFiltersRemovedOnTermination) {
  nic::Nic nic(4);
  ScapKernel k(lb_config(4), &nic);
  Timestamp t(0);
  std::vector<SessionBuilder> sessions;
  for (std::uint16_t i = 0; i < 50; ++i) {
    sessions.emplace_back(client_tuple(static_cast<std::uint16_t>(2000 + i), 80));
    k.handle_packet(sessions.back().syn(t), t, 0);
  }
  ASSERT_GT(nic.fdir().size(), 0u);
  for (auto& s : sessions) k.handle_packet(s.rst(t), t, 0);
  EXPECT_EQ(nic.fdir().size(), 0u);
  EXPECT_EQ(k.table().size(), 0u);
}

TEST(LoadBalance, DisabledByDefault) {
  nic::Nic nic(4);
  KernelConfig cfg = lb_config(4);
  cfg.dynamic_load_balance = false;
  ScapKernel k(cfg, &nic);
  Timestamp t(0);
  for (std::uint16_t i = 0; i < 100; ++i) {
    SessionBuilder s(client_tuple(static_cast<std::uint16_t>(1000 + i), 80));
    k.handle_packet(s.syn(t), t, 0);
  }
  EXPECT_EQ(k.stats().streams_rebalanced, 0u);
}

}  // namespace
}  // namespace scap::kernel
