// Seeded fuzz of the decode path and the kernel's hostile-input handling
// (DESIGN.md §8). 50k random buffers plus structured header mutations go
// through Packet::decode and a defragmenting strict-mode kernel. Nothing may
// crash, every rejected packet must land in exactly one taxonomy bucket, and
// the buckets must sum to pkts_invalid.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "base/rng.hpp"
#include "faultinject/adversary.hpp"
#include "kernel/module.hpp"
#include "packet/headers.hpp"
#include "packet/packet.hpp"

namespace scap::kernel {
namespace {

using faultinject::AdversaryConfig;
using faultinject::AdversaryGen;
using faultinject::AdversaryMix;

constexpr std::uint64_t kRandomBuffers = 50000;

KernelConfig hostile_config() {
  KernelConfig cfg;
  cfg.memory_size = 4 << 20;
  cfg.defaults.chunk_size = 4096;
  cfg.defaults.mode = ReassemblyMode::kTcpStrict;
  cfg.defragment_ip = true;
  cfg.max_streams = 128;
  return cfg;
}

void drain(ScapKernel& k) {
  auto& q = k.events(0);
  while (!q.empty()) k.release_chunk(q.pop());
}

std::uint64_t taxonomy_sum(const KernelStats& s) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < kNumDecodeErrors; ++i) sum += s.parse_errors[i];
  return sum;
}

// Pure random bytes: most won't decode; whatever happens, every invalid
// packet carries exactly one taxonomy reason and the kernel absorbs it.
TEST(MalformedFuzz, RandomBuffersNeverCrashAndAlwaysClassify) {
  ScapKernel k(hostile_config());
  Rng rng(0xf0220ull);
  Timestamp t(0);
  std::vector<std::uint8_t> buf;

  for (std::uint64_t i = 0; i < kRandomBuffers; ++i) {
    // Length sweep biased toward header-boundary sizes: 0..63 covers every
    // truncation point of eth+ip+tcp; occasionally much larger.
    std::size_t len = rng.bounded(64);
    if (rng.chance(0.1)) len = 64 + rng.bounded(1536);
    buf.resize(len);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.bounded(256));

    const Packet pkt = Packet::from_bytes(buf, t);
    if (!pkt.valid()) {
      EXPECT_NE(pkt.decode_error(), DecodeError::kNone)
          << "invalid packet without a taxonomy reason at iteration " << i;
    } else {
      EXPECT_EQ(pkt.decode_error(), DecodeError::kNone);
    }
    k.handle_packet(pkt, t);
    t = t + Duration::from_usec(1);
    if ((i & 0x3ff) == 0) drain(k);
  }
  drain(k);

  const KernelStats& s = k.stats();
  EXPECT_EQ(taxonomy_sum(s), s.pkts_invalid);
  EXPECT_GT(s.pkts_invalid, 0u);
  // Random bytes rarely hit 0x0800: most failures are kNonIpv4 or
  // truncation, but the point of the sweep is that whatever bucket fires,
  // the accounting is airtight.
}

// Structured mutations of well-formed frames: truncations, bad versions,
// IHL/total_len/data-offset corruption, checksum flips, absurd lengths —
// plus SYN and orphan-fragment floods, all from one seed.
TEST(MalformedFuzz, StructuredMutationsTallyIntoTaxonomy) {
  ScapKernel k(hostile_config());

  AdversaryConfig cfg;
  cfg.seed = 0xbadf00d;
  cfg.packets = 50000;
  cfg.mix = AdversaryMix{.session = 2.0, .garbage = 2.0, .mutated = 4.0,
                         .syn_flood = 1.0, .frag_flood = 2.0};
  AdversaryGen gen(cfg);

  for (std::uint64_t i = 0; i < cfg.packets; ++i) {
    const Packet pkt = gen.next();
    if (!pkt.valid()) {
      EXPECT_NE(pkt.decode_error(), DecodeError::kNone);
    }
    k.handle_packet(pkt, pkt.timestamp());
    if ((i & 0x3ff) == 0) drain(k);
  }
  k.terminate_all(Timestamp::from_sec(600));
  drain(k);

  const KernelStats& s = k.stats();
  EXPECT_EQ(taxonomy_sum(s), s.pkts_invalid);
  EXPECT_GT(s.pkts_invalid, 0u);
  // The structured mutator must actually reach distinct buckets, not just
  // tip everything into one: truncation and version corruption are both
  // guaranteed members of its repertoire.
  const auto at = [&s](DecodeError e) {
    return s.parse_errors[static_cast<std::size_t>(e)];
  };
  EXPECT_GT(at(DecodeError::kEthTruncated) + at(DecodeError::kIpTruncated) +
                at(DecodeError::kTcpTruncated),
            0u);
  EXPECT_GT(at(DecodeError::kIpBadVersion), 0u);
  EXPECT_GT(at(DecodeError::kIpBadHeaderLen), 0u);
  EXPECT_GT(at(DecodeError::kTcpBadDataOff), 0u);
  // Orphan fragments are valid packets buffered by the defragmenter, not
  // parse errors; the flood must have left datagrams pending.
  EXPECT_GT(k.defragmenter().stats().fragments_seen, 0u);
  // And the cooperative share of the mix still got through.
  EXPECT_GT(s.pkts_stored, 0u);
  EXPECT_GT(s.streams_created, 0u);
}

// The same seed must produce the same taxonomy, bucket by bucket.
TEST(MalformedFuzz, TaxonomyIsSeedDeterministic) {
  auto run = [] {
    ScapKernel k(hostile_config());
    AdversaryConfig cfg;
    cfg.seed = 0x12345;
    cfg.packets = 8000;
    cfg.mix.mutated = 5.0;
    AdversaryGen gen(cfg);
    for (std::uint64_t i = 0; i < cfg.packets; ++i) {
      const Packet pkt = gen.next();
      k.handle_packet(pkt, pkt.timestamp());
      drain(k);
    }
    std::vector<std::uint64_t> buckets(kNumDecodeErrors);
    for (std::size_t i = 0; i < kNumDecodeErrors; ++i) {
      buckets[i] = k.stats().parse_errors[i];
    }
    return buckets;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace scap::kernel
