#include "kernel/module.hpp"

#include <gtest/gtest.h>

#include <string>

#include "tests/kernel/test_helpers.hpp"

namespace scap::kernel {
namespace {

using testing::SessionBuilder;
using testing::bytes_of;
using testing::client_tuple;

KernelConfig small_config() {
  KernelConfig cfg;
  cfg.memory_size = 1 << 20;
  cfg.defaults.chunk_size = 64;
  cfg.defaults.inactivity_timeout = Duration::from_sec(10);
  return cfg;
}

/// Drains every event from a kernel core queue, releasing chunk memory.
std::vector<Event> drain(ScapKernel& k, int core = 0) {
  std::vector<Event> events;
  auto& q = k.events(core);
  while (!q.empty()) {
    Event ev = q.pop();
    k.release_chunk(ev);
    events.push_back(std::move(ev));
  }
  return events;
}

std::string chunk_text(const Event& ev) {
  return std::string(ev.chunk.data.begin(), ev.chunk.data.end());
}

TEST(ScapKernelTest, FullSessionLifecycle) {
  ScapKernel k(small_config());
  testing::KernelInvariantGuard guard(k);
  SessionBuilder s;
  Timestamp t(0);

  auto out = k.handle_packet(s.syn(t), t);
  EXPECT_TRUE(out.created_stream);
  EXPECT_EQ(out.verdict, Verdict::kControl);

  k.handle_packet(s.syn_ack(t), t);
  k.handle_packet(s.ack(t), t);
  out = k.handle_packet(s.data("GET / HTTP/1.1\r\n", t), t);
  EXPECT_EQ(out.verdict, Verdict::kStored);
  EXPECT_EQ(out.stored_bytes, 16u);

  out = k.handle_packet(s.fin(t), t);
  EXPECT_TRUE(out.terminated_stream);

  auto events = drain(k);
  // created(orig) + created(reply) + data flush + terminated(orig).
  int created = 0, data = 0, term = 0;
  for (const auto& ev : events) {
    switch (ev.type) {
      case EventType::kCreated: ++created; break;
      case EventType::kData: ++data; break;
      case EventType::kTerminated: ++term; break;
    }
  }
  EXPECT_EQ(created, 2);
  EXPECT_EQ(data, 1);
  EXPECT_EQ(term, 1);
  for (const auto& ev : events) {
    if (ev.type == EventType::kData) {
      EXPECT_EQ(chunk_text(ev), "GET / HTTP/1.1\r\n");
      EXPECT_EQ(ev.stream.status, StreamStatus::kClosedFin);
    }
  }
  // All chunk memory returned after the drain.
  EXPECT_EQ(k.allocator().used(), 0u);
}

TEST(ScapKernelTest, HandshakeEstablishedTracked) {
  ScapKernel k(small_config());
  testing::KernelInvariantGuard guard(k);
  SessionBuilder s;
  Timestamp t(0);
  k.handle_packet(s.syn(t), t);
  k.handle_packet(s.syn_ack(t), t);
  k.handle_packet(s.ack(t), t);
  k.handle_packet(s.data("x", t), t);
  StreamRecord* rec = k.table().find(s.tuple());
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->handshake, HandshakeState::kEstablished);
  EXPECT_EQ(rec->error_bits & kErrIncompleteHandshake, 0u);
}

TEST(ScapKernelTest, MidFlowDataFlagsIncompleteHandshake) {
  ScapKernel k(small_config());
  testing::KernelInvariantGuard guard(k);
  SessionBuilder s;
  Timestamp t(0);
  k.handle_packet(s.data("no handshake", t), t);
  StreamRecord* rec = k.table().find(s.tuple());
  ASSERT_NE(rec, nullptr);
  EXPECT_NE(rec->error_bits & kErrIncompleteHandshake, 0u);
}

TEST(ScapKernelTest, RstTerminatesBothDirections) {
  ScapKernel k(small_config());
  testing::KernelInvariantGuard guard(k);
  SessionBuilder s;
  Timestamp t(0);
  k.handle_packet(s.syn(t), t);
  k.handle_packet(s.syn_ack(t), t);
  k.handle_packet(s.data("up", t), t);
  k.handle_packet(s.reply_data("down", t), t);
  EXPECT_EQ(k.table().size(), 2u);
  k.handle_packet(s.rst(t), t);
  EXPECT_EQ(k.table().size(), 0u);
  EXPECT_EQ(k.stats().streams_terminated, 2u);
}

TEST(ScapKernelTest, PureAckForUnknownStreamIgnored) {
  ScapKernel k(small_config());
  testing::KernelInvariantGuard guard(k);
  SessionBuilder s;
  auto out = k.handle_packet(s.ack(Timestamp(0)), Timestamp(0));
  EXPECT_EQ(out.verdict, Verdict::kIgnored);
  EXPECT_EQ(k.table().size(), 0u);
}

TEST(ScapKernelTest, BpfFilterDiscardsEarly) {
  KernelConfig cfg = small_config();
  cfg.filter = BpfProgram::compile("port 443");
  ScapKernel k(cfg);
  testing::KernelInvariantGuard guard(k);
  SessionBuilder s;  // port 80
  auto out = k.handle_packet(s.syn(Timestamp(0)), Timestamp(0));
  EXPECT_EQ(out.verdict, Verdict::kFilteredBpf);
  EXPECT_EQ(k.table().size(), 0u);
  EXPECT_EQ(k.stats().pkts_filtered, 1u);
}

TEST(ScapKernelTest, CutoffTruncatesStream) {
  KernelConfig cfg = small_config();
  cfg.defaults.cutoff_bytes = 10;
  ScapKernel k(cfg);
  testing::KernelInvariantGuard guard(k);
  SessionBuilder s;
  Timestamp t(0);
  k.handle_packet(s.syn(t), t);
  k.handle_packet(s.syn_ack(t), t);
  auto out = k.handle_packet(s.data("0123456789ABCDEF", t), t);  // 16 bytes
  EXPECT_EQ(out.verdict, Verdict::kStored);
  EXPECT_EQ(out.stored_bytes, 10u);  // trimmed to the cutoff

  StreamRecord* rec = k.table().find(s.tuple());
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->cutoff_exceeded);

  // Subsequent data is discarded in the kernel.
  out = k.handle_packet(s.data("more data", t), t);
  EXPECT_EQ(out.verdict, Verdict::kCutoffDiscard);
  EXPECT_EQ(k.stats().pkts_cutoff, 1u);

  // The stream record still tracks the flow for statistics.
  EXPECT_EQ(rec->stats.pkts, 3u);  // syn + 2 data
  k.handle_packet(s.fin(t), t);
  auto events = drain(k);
  bool found_final = false;
  for (const auto& ev : events) {
    if (ev.type == EventType::kData) {
      EXPECT_EQ(chunk_text(ev), "0123456789");
      found_final = true;
    }
  }
  EXPECT_TRUE(found_final);
}

TEST(ScapKernelTest, ZeroCutoffDiscardsAllData) {
  KernelConfig cfg = small_config();
  cfg.defaults.cutoff_bytes = 0;
  ScapKernel k(cfg);
  testing::KernelInvariantGuard guard(k);
  SessionBuilder s;
  Timestamp t(0);
  k.handle_packet(s.syn(t), t);
  auto out = k.handle_packet(s.data("payload", t), t);
  EXPECT_EQ(out.verdict, Verdict::kCutoffDiscard);
  k.handle_packet(s.fin(t), t);
  for (const auto& ev : drain(k)) {
    EXPECT_NE(ev.type, EventType::kData);
    if (ev.type == EventType::kTerminated) {
      // Flow statistics survive even with all data discarded (§3.3.1).
      EXPECT_EQ(ev.stream.stats.bytes, 7u);
      EXPECT_GE(ev.stream.stats.pkts, 3u);
    }
  }
  EXPECT_EQ(k.allocator().used(), 0u);
}

TEST(ScapKernelTest, CutoffClassOverridesDefault) {
  KernelConfig cfg = small_config();
  cfg.defaults.cutoff_bytes = -1;
  CutoffClass cls;
  cls.filter = BpfProgram::compile("port 80");
  cls.cutoff_bytes = 4;
  cfg.cutoff_classes.push_back(std::move(cls));
  ScapKernel k(cfg);
  testing::KernelInvariantGuard guard(k);

  SessionBuilder web(client_tuple(40000, 80));
  SessionBuilder other(client_tuple(40001, 9999));
  Timestamp t(0);
  k.handle_packet(web.syn(t), t);
  k.handle_packet(web.data("0123456789", t), t);
  k.handle_packet(other.syn(t), t);
  k.handle_packet(other.data("0123456789", t), t);

  EXPECT_TRUE(k.table().find(web.tuple())->cutoff_exceeded);
  EXPECT_FALSE(k.table().find(other.tuple())->cutoff_exceeded);
}

TEST(ScapKernelTest, PerDirectionCutoff) {
  KernelConfig cfg = small_config();
  cfg.cutoff_per_dir[static_cast<int>(Direction::kOrig)] = 4;
  cfg.cutoff_per_dir[static_cast<int>(Direction::kReply)] = -1;
  ScapKernel k(cfg);
  testing::KernelInvariantGuard guard(k);
  SessionBuilder s;
  Timestamp t(0);
  k.handle_packet(s.syn(t), t);
  k.handle_packet(s.syn_ack(t), t);
  k.handle_packet(s.data("0123456789", t), t);
  k.handle_packet(s.reply_data("0123456789", t), t);
  EXPECT_TRUE(k.table().find(s.tuple())->cutoff_exceeded);
  EXPECT_FALSE(k.table().find(s.tuple().reversed())->cutoff_exceeded);
}

TEST(ScapKernelTest, FdirInstalledOnCutoffAndPassesFinRst) {
  nic::Nic nic(1);
  KernelConfig cfg = small_config();
  cfg.defaults.cutoff_bytes = 4;
  cfg.use_fdir = true;
  ScapKernel k(cfg, &nic);
  testing::KernelInvariantGuard guard(k);
  SessionBuilder s;
  Timestamp t(0);
  k.handle_packet(s.syn(t), t);
  k.handle_packet(s.data("0123456789", t), t);
  EXPECT_EQ(k.stats().fdir_installs, 1u);
  EXPECT_EQ(nic.fdir().size(), 2u);  // ACK and ACK|PSH filters

  // Data packets for this stream now die at the NIC...
  auto r = nic.receive(s.data("dropped at nic", t));
  EXPECT_EQ(r.disposition, nic::RxDisposition::kDroppedByFilter);
  // ...but FIN still reaches the host and removes the filters.
  Packet fin = s.fin(t);
  EXPECT_EQ(nic.receive(fin).disposition, nic::RxDisposition::kToQueue);
  k.handle_packet(fin, t);
  EXPECT_EQ(nic.fdir().size(), 0u);
}

TEST(ScapKernelTest, FdirTimeoutReinstallDoublesTimeout) {
  nic::Nic nic(1);
  KernelConfig cfg = small_config();
  cfg.defaults.cutoff_bytes = 4;
  cfg.use_fdir = true;
  cfg.fdir_base_timeout = Duration::from_sec(2);
  cfg.expiry_interval = Duration::from_msec(100);
  cfg.defaults.inactivity_timeout = Duration::from_sec(1000);
  ScapKernel k(cfg, &nic);
  testing::KernelInvariantGuard guard(k);
  SessionBuilder s;
  Timestamp t(0);
  k.handle_packet(s.syn(t), t);
  k.handle_packet(s.data("0123456789", t), t);
  ASSERT_EQ(nic.fdir().size(), 2u);

  // Let the filter time out.
  k.run_maintenance(Timestamp::from_sec(3));
  EXPECT_EQ(nic.fdir().size(), 0u);
  StreamRecord* rec = k.table().find(s.tuple());
  ASSERT_NE(rec, nullptr);
  EXPECT_FALSE(rec->fdir_installed);

  // The stream is still alive: its next packet re-installs with 2x timeout.
  k.handle_packet(s.data("still flowing", Timestamp::from_sec(4)),
                  Timestamp::from_sec(4));
  EXPECT_EQ(k.stats().fdir_reinstalls, 1u);
  EXPECT_EQ(nic.fdir().size(), 2u);
  EXPECT_EQ(rec->fdir_timeout.ns(), Duration::from_sec(4).ns());
}

TEST(ScapKernelTest, FinSeqEstimatesOffloadedFlowSize) {
  nic::Nic nic(1);
  KernelConfig cfg = small_config();
  cfg.defaults.cutoff_bytes = 4;
  cfg.use_fdir = true;
  ScapKernel k(cfg, &nic);
  testing::KernelInvariantGuard guard(k);
  SessionBuilder s;
  Timestamp t(0);
  k.handle_packet(s.syn(t), t);
  k.handle_packet(s.data("0123456789", t), t);  // cutoff; FDIR installed

  // 90 more bytes flow but are dropped at the NIC (we simply never hand
  // them to the kernel). The FIN carries the final sequence number.
  for (int i = 0; i < 9; ++i) s.data("0123456789", t);
  k.handle_packet(s.fin(t), t);

  bool checked = false;
  for (const auto& ev : drain(k)) {
    if (ev.type == EventType::kTerminated) {
      EXPECT_EQ(ev.stream.stats.bytes, 100u);  // estimated from FIN seq
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(ScapKernelTest, PplDropsLowPriorityUnderMemoryPressure) {
  KernelConfig cfg = small_config();
  cfg.memory_size = 64 * 1024;
  cfg.defaults.chunk_size = 4096;
  cfg.ppl.base_threshold = 0.25;
  cfg.ppl.priority_levels = 2;
  ScapKernel k(cfg);
  testing::KernelInvariantGuard guard(k);
  Timestamp t(0);

  // Fill memory with HIGH-priority streams whose events we never consume
  // (high priority so the fill itself is not throttled by PPL).
  std::string block(4096, 'x');
  for (std::uint16_t i = 0; i < 15; ++i) {
    SessionBuilder s(client_tuple(static_cast<std::uint16_t>(20000 + i), 80));
    k.handle_packet(s.syn(t), t);
    StreamRecord* filler = k.table().find(s.tuple());
    ASSERT_NE(filler, nullptr);
    ASSERT_TRUE(k.set_stream_priority(filler->id, 1));
    k.handle_packet(s.data(block, t), t);
  }
  EXPECT_GT(k.allocator().used_fraction(), 0.9);

  // A low-priority data packet now drops; a high-priority one still fits
  // (it may need forced chunk completion, but PPL admits it).
  SessionBuilder low(client_tuple(30000, 80));
  k.handle_packet(low.syn(t), t);
  auto out = k.handle_packet(low.data("low prio data", t), t);
  EXPECT_EQ(out.verdict, Verdict::kPplDrop);
  EXPECT_GT(k.stats().pkts_ppl_dropped, 0u);

  SessionBuilder high(client_tuple(30001, 80));
  k.handle_packet(high.syn(t), t);
  StreamRecord* rec = k.table().find(high.tuple());
  ASSERT_NE(rec, nullptr);
  ASSERT_TRUE(k.set_stream_priority(rec->id, 1));
  out = k.handle_packet(high.data("high prio data", t), t);
  EXPECT_EQ(out.verdict, Verdict::kStored);
}

TEST(ScapKernelTest, ControlPacketsBypassPpl) {
  KernelConfig cfg = small_config();
  cfg.memory_size = 8 * 1024;
  cfg.defaults.chunk_size = 4096;
  cfg.ppl.base_threshold = 0.0;
  ScapKernel k(cfg);
  testing::KernelInvariantGuard guard(k);
  Timestamp t(0);
  std::string block(4096, 'x');
  SessionBuilder a(client_tuple(1000, 80));
  k.handle_packet(a.syn(t), t);
  k.handle_packet(a.data(block, t), t);
  k.handle_packet(a.data(block, t), t);
  // Memory is now full; a new SYN must still create a stream.
  SessionBuilder b(client_tuple(1001, 80));
  auto out = k.handle_packet(b.syn(t), t);
  EXPECT_TRUE(out.created_stream);
}

TEST(ScapKernelTest, InactivityTimeoutTerminatesStreams) {
  KernelConfig cfg = small_config();
  cfg.defaults.inactivity_timeout = Duration::from_sec(10);
  cfg.expiry_interval = Duration::from_sec(1);
  ScapKernel k(cfg);
  testing::KernelInvariantGuard guard(k);
  SessionBuilder s;
  Timestamp t(0);
  k.handle_packet(s.syn(t), t);
  k.handle_packet(s.data("hello", t), t);
  EXPECT_EQ(k.table().size(), 1u);

  // Another stream's packet 15 (virtual) seconds later triggers the scan.
  SessionBuilder other(client_tuple(50000, 80));
  k.handle_packet(other.syn(Timestamp::from_sec(15)), Timestamp::from_sec(15));
  EXPECT_EQ(k.table().find(s.tuple()), nullptr);

  bool term_seen = false;
  for (const auto& ev : drain(k)) {
    if (ev.type == EventType::kTerminated &&
        ev.stream.status == StreamStatus::kClosedTimeout) {
      term_seen = true;
      EXPECT_EQ(ev.stream.stats.bytes, 5u);
    }
  }
  EXPECT_TRUE(term_seen);
}

TEST(ScapKernelTest, UdpStreamsConcatenateAndExpire) {
  KernelConfig cfg = small_config();
  cfg.expiry_interval = Duration::from_sec(1);
  ScapKernel k(cfg);
  testing::KernelInvariantGuard guard(k);
  FiveTuple t5{0x0a000001, 0x0a000002, 5000, 53, kProtoUdp};
  Timestamp t(0);
  k.handle_packet(make_udp_packet(t5, bytes_of("query-1|"), t), t);
  k.handle_packet(make_udp_packet(t5, bytes_of("query-2|"), t), t);
  k.terminate_all(Timestamp::from_sec(60));
  std::string all;
  for (const auto& ev : drain(k)) {
    if (ev.type == EventType::kData) all += chunk_text(ev);
  }
  EXPECT_EQ(all, "query-1|query-2|");
}

TEST(ScapKernelTest, DiscardStreamStopsCollection) {
  ScapKernel k(small_config());
  testing::KernelInvariantGuard guard(k);
  SessionBuilder s;
  Timestamp t(0);
  k.handle_packet(s.syn(t), t);
  k.handle_packet(s.data("first", t), t);
  StreamRecord* rec = k.table().find(s.tuple());
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(k.discard_stream(rec->id));
  auto out = k.handle_packet(s.data("second", t), t);
  EXPECT_EQ(out.verdict, Verdict::kCutoffDiscard);
}

TEST(ScapKernelTest, EvictionOnRecordBudgetKeepsNewestStreams) {
  KernelConfig cfg = small_config();
  cfg.max_streams = 100;
  ScapKernel k(cfg);
  testing::KernelInvariantGuard guard(k);
  Timestamp t(0);
  for (std::uint16_t i = 0; i < 300; ++i) {
    SessionBuilder s(client_tuple(static_cast<std::uint16_t>(1000 + i), 80));
    k.handle_packet(s.syn(Timestamp(i)), Timestamp(i));
  }
  EXPECT_EQ(k.table().size(), 100u);
  EXPECT_EQ(k.stats().streams_evicted, 200u);
  // The newest stream is still present.
  EXPECT_NE(k.table().find(client_tuple(1299, 80)), nullptr);
  EXPECT_EQ(k.table().find(client_tuple(1000, 80)), nullptr);
}

TEST(ScapKernelTest, MultiAppMaskFollowsFilters) {
  KernelConfig cfg = small_config();
  cfg.app_filters.push_back(BpfProgram::compile("port 80"));
  cfg.app_filters.push_back(BpfProgram::compile("port 443"));
  ScapKernel k(cfg);
  testing::KernelInvariantGuard guard(k);
  SessionBuilder web(client_tuple(40000, 80));
  Timestamp t(0);
  k.handle_packet(web.syn(t), t);
  k.handle_packet(web.data("http data", t), t);
  k.handle_packet(web.fin(t), t);
  for (const auto& ev : drain(k)) {
    EXPECT_EQ(ev.app_mask, 1u);  // only app 0 wants port 80
  }
}

TEST(ScapKernelTest, NeedPktsProducesPacketRecords) {
  KernelConfig cfg = small_config();
  cfg.need_pkts = true;
  ScapKernel k(cfg);
  testing::KernelInvariantGuard guard(k);
  SessionBuilder s;
  Timestamp t(0);
  k.handle_packet(s.syn(t), t);
  k.handle_packet(s.data("aaa", Timestamp::from_usec(10)),
                  Timestamp::from_usec(10));
  k.handle_packet(s.data("bbbb", Timestamp::from_usec(20)),
                  Timestamp::from_usec(20));
  k.handle_packet(s.fin(Timestamp::from_usec(30)), Timestamp::from_usec(30));
  for (const auto& ev : drain(k)) {
    if (ev.type != EventType::kData) continue;
    ASSERT_EQ(ev.chunk.packets.size(), 2u);
    EXPECT_EQ(ev.chunk.packets[0].caplen, 3u);
    EXPECT_EQ(ev.chunk.packets[0].ts.usec(), 10);
    EXPECT_EQ(ev.chunk.packets[1].chunk_offset, 3u);
    EXPECT_EQ(ev.chunk.packets[1].caplen, 4u);
  }
}

TEST(ScapKernelTest, StatsConsistency) {
  ScapKernel k(small_config());
  testing::KernelInvariantGuard guard(k);
  SessionBuilder s;
  Timestamp t(0);
  k.handle_packet(s.syn(t), t);
  k.handle_packet(s.syn_ack(t), t);
  k.handle_packet(s.ack(t), t);
  k.handle_packet(s.data("0123456789", t), t);
  k.handle_packet(s.fin(t), t);
  const auto& st = k.stats();
  EXPECT_EQ(st.pkts_seen, 5u);
  EXPECT_EQ(st.pkts_stored, 1u);
  EXPECT_EQ(st.bytes_stored, 10u);
  EXPECT_EQ(st.streams_created, 2u);
  EXPECT_EQ(st.streams_terminated, 1u);
}

TEST(ScapKernelTest, TerminateAllFlushesEverything) {
  ScapKernel k(small_config());
  testing::KernelInvariantGuard guard(k);
  Timestamp t(0);
  for (std::uint16_t i = 0; i < 10; ++i) {
    SessionBuilder s(client_tuple(static_cast<std::uint16_t>(7000 + i), 80));
    k.handle_packet(s.syn(t), t);
    k.handle_packet(s.data("some data", t), t);
  }
  k.terminate_all(Timestamp::from_sec(1));
  EXPECT_EQ(k.table().size(), 0u);
  int term = 0, data = 0;
  for (const auto& ev : drain(k)) {
    if (ev.type == EventType::kTerminated) ++term;
    if (ev.type == EventType::kData) ++data;
  }
  EXPECT_EQ(term, 10);
  EXPECT_EQ(data, 10);
  EXPECT_EQ(k.allocator().used(), 0u);
}

}  // namespace
}  // namespace scap::kernel
