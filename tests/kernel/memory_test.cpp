#include "kernel/memory.hpp"

#include <gtest/gtest.h>

namespace scap::kernel {
namespace {

TEST(ChunkAllocator, AllocateAndRelease) {
  ChunkAllocator alloc(1000);
  auto a = alloc.allocate(400);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(alloc.used(), 400u);
  auto b = alloc.allocate(400);
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(alloc.used(), 800u);
  alloc.release(*a, 400);
  EXPECT_EQ(alloc.used(), 400u);
}

TEST(ChunkAllocator, FailsWhenExhausted) {
  ChunkAllocator alloc(1000);
  EXPECT_TRUE(alloc.allocate(800).has_value());
  EXPECT_FALSE(alloc.allocate(300).has_value());
  EXPECT_EQ(alloc.failures(), 1u);
  EXPECT_EQ(alloc.used(), 800u);
}

TEST(ChunkAllocator, RecyclesAddresses) {
  ChunkAllocator alloc(10000);
  auto a = alloc.allocate(512);
  alloc.release(*a, 512);
  auto b = alloc.allocate(512);
  EXPECT_EQ(*a, *b);  // LIFO recycling, slab-like
}

TEST(ChunkAllocator, UsedFraction) {
  ChunkAllocator alloc(1000);
  EXPECT_DOUBLE_EQ(alloc.used_fraction(), 0.0);
  alloc.allocate(250);
  EXPECT_DOUBLE_EQ(alloc.used_fraction(), 0.25);
}

TEST(ChunkAllocator, ForcedAllocationOvershoots) {
  ChunkAllocator alloc(100);
  alloc.allocate(100);
  const std::uint64_t addr = alloc.allocate_forced(50);
  (void)addr;
  EXPECT_EQ(alloc.used(), 150u);
  EXPECT_GT(alloc.used_fraction(), 1.0);
  alloc.release(addr, 50);
  EXPECT_EQ(alloc.used(), 100u);
}

TEST(ChunkAllocator, HighWaterTracksPeak) {
  ChunkAllocator alloc(1000);
  auto a = alloc.allocate(600);
  alloc.release(*a, 600);
  alloc.allocate(100);
  EXPECT_EQ(alloc.high_water(), 600u);
}

TEST(ChunkAllocator, DistinctSizeClassesDontMix) {
  ChunkAllocator alloc(100000);
  auto a = alloc.allocate(512);
  alloc.release(*a, 512);
  auto b = alloc.allocate(1024);
  EXPECT_NE(*a, *b);  // different size class: fresh address
}

}  // namespace
}  // namespace scap::kernel
