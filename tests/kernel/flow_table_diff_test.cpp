// Differential test: the open-addressing FlowTable vs a trivially-correct
// reference model (std::unordered_map + std::list LRU) driven through a long
// randomized interleaving of create/find/touch/remove/expire. Asserts
// identical contents, identical LRU order, identical eviction victims, and
// record-pointer stability across table growth.

#include "kernel/flow_table.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <random>
#include <unordered_map>
#include <vector>

namespace scap::kernel {
namespace {

constexpr int kTuplePool = 512;
constexpr int kOps = 120000;
constexpr std::int64_t kStepNs = 1'000'000;  // 1ms of virtual time per op

FiveTuple tuple_at(int i) {
  return {0x0a000000u + static_cast<std::uint32_t>(i / 256), 0x0a00ffffu,
          static_cast<std::uint16_t>(10000 + i), 80, kProtoTcp};
}

struct RefEntry {
  StreamId id = kInvalidStreamId;
  Timestamp last_access;
};

/// Reference LRU flow table: map keyed by tuple-pool index, list front =
/// most recently used.
struct RefModel {
  std::unordered_map<int, RefEntry> entries;
  std::list<int> lru;

  void to_front(int key) {
    lru.remove(key);
    lru.push_front(key);
  }
  void create(int key, StreamId id, Timestamp now) {
    entries[key] = {id, now};
    lru.push_front(key);
  }
  void remove(int key) {
    entries.erase(key);
    lru.remove(key);
  }
};

void run_differential(std::size_t max_records) {
  FlowTable table(max_records);
  RefModel ref;
  std::mt19937 rng(0x5ca9u + static_cast<std::uint32_t>(max_records));
  std::uniform_int_distribution<int> key_dist(0, kTuplePool - 1);
  std::uniform_int_distribution<int> op_dist(0, 99);

  // Pointer recorded at creation; must stay valid for the record's lifetime
  // even while the table's slot arrays grow.
  std::unordered_map<StreamId, const StreamRecord*> created_at;

  const Duration timeout = StreamParams{}.inactivity_timeout;
  std::int64_t t_ns = 0;

  for (int op = 0; op < kOps; ++op) {
    t_ns += kStepNs;
    const Timestamp now(t_ns);
    const int key = key_dist(rng);
    const int what = op_dist(rng);

    if (what < 40) {  // create (if this tuple isn't tracked yet)
      if (ref.entries.contains(key)) continue;
      int expected_victim = -1;
      if (max_records > 0 && ref.entries.size() >= max_records) {
        expected_victim = ref.lru.back();
      }
      int evicted = -1;
      StreamRecord* rec =
          table.create(tuple_at(key), now, [&](StreamRecord& victim) {
            evicted = static_cast<int>(victim.tuple.src_port) - 10000;
          });
      ASSERT_NE(rec, nullptr);
      ASSERT_EQ(evicted, expected_victim) << "eviction victim diverged";
      if (expected_victim >= 0) ref.remove(expected_victim);
      ref.create(key, rec->id, now);
      created_at[rec->id] = rec;
    } else if (what < 65) {  // find
      StreamRecord* rec = table.find(tuple_at(key));
      auto it = ref.entries.find(key);
      if (it == ref.entries.end()) {
        ASSERT_EQ(rec, nullptr);
      } else {
        ASSERT_NE(rec, nullptr);
        ASSERT_EQ(rec->id, it->second.id);
        ASSERT_EQ(rec, created_at[it->second.id]) << "record pointer moved";
        ASSERT_EQ(table.by_id(it->second.id), rec);
      }
    } else if (what < 85) {  // touch
      auto it = ref.entries.find(key);
      if (it == ref.entries.end()) continue;
      StreamRecord* rec = table.find(tuple_at(key));
      ASSERT_NE(rec, nullptr);
      table.touch(*rec, now);
      it->second.last_access = now;
      ref.to_front(key);
    } else if (what < 95) {  // remove
      auto it = ref.entries.find(key);
      if (it == ref.entries.end()) continue;
      StreamRecord* rec = table.find(tuple_at(key));
      ASSERT_NE(rec, nullptr);
      created_at.erase(rec->id);
      table.remove(*rec);
      ref.remove(key);
      ASSERT_EQ(table.find(tuple_at(key)), nullptr);
    } else {  // expiry sweep after an idle gap
      t_ns += 2 * timeout.ns();
      const Timestamp later(t_ns);
      std::vector<int> expired;
      table.expire_idle(later, [&](StreamRecord& rec) {
        expired.push_back(static_cast<int>(rec.tuple.src_port) - 10000);
        created_at.erase(rec.id);
      });
      // Everything is now idle past the uniform default timeout: the sweep
      // must deliver every entry, oldest first.
      std::vector<int> expected(ref.lru.rbegin(), ref.lru.rend());
      ASSERT_EQ(expired, expected) << "expiry order diverged";
      ref.entries.clear();
      ref.lru.clear();
    }

    ASSERT_EQ(table.size(), ref.entries.size());
  }

  // Final full-structure comparison: contents and exact LRU order (walk the
  // intrusive list oldest -> newest via lru_prev).
  ASSERT_EQ(table.size(), ref.entries.size());
  std::vector<int> table_order;
  for (const StreamRecord* rec = table.oldest(); rec != nullptr;
       rec = rec->lru_prev) {
    table_order.push_back(static_cast<int>(rec->tuple.src_port) - 10000);
  }
  const std::vector<int> ref_order(ref.lru.rbegin(), ref.lru.rend());
  EXPECT_EQ(table_order, ref_order);
  for (const auto& [key, entry] : ref.entries) {
    StreamRecord* rec = table.find(tuple_at(key));
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->id, entry.id);
    EXPECT_EQ(rec->last_access, entry.last_access);
  }
}

TEST(FlowTableDiff, UnboundedMatchesReferenceModel) {
  run_differential(/*max_records=*/0);
}

TEST(FlowTableDiff, BudgetedEvictionMatchesReferenceModel) {
  // Budget far below the tuple pool so create constantly evicts.
  run_differential(/*max_records=*/100);
}

}  // namespace
}  // namespace scap::kernel
