#include "kernel/ppl.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scap::kernel {
namespace {

TEST(Ppl, NoDropsBelowBaseThreshold) {
  Ppl ppl({.base_threshold = 0.5, .priority_levels = 2, .overload_cutoff = 0});
  EXPECT_EQ(ppl.admit(0.0, 0, 1 << 20), PplVerdict::kAdmit);
  EXPECT_EQ(ppl.admit(0.5, 0, 1 << 20), PplVerdict::kAdmit);
}

TEST(Ppl, WatermarksEquallySpaced) {
  Ppl ppl({.base_threshold = 0.5, .priority_levels = 2});
  // n = 2: w0 = 0.5, w1 = 0.75, w2 = 1.0.
  EXPECT_DOUBLE_EQ(ppl.watermark(0), 0.75);
  EXPECT_DOUBLE_EQ(ppl.watermark(1), 1.0);
}

TEST(Ppl, LowPriorityDropsFirst) {
  Ppl ppl({.base_threshold = 0.5, .priority_levels = 2, .overload_cutoff = -1});
  // At 80% memory: above w1 (0.75) -> low priority drops...
  EXPECT_EQ(ppl.admit(0.80, 0, 0), PplVerdict::kDropPriority);
  // ...but high priority is still admitted (w2 = 1.0).
  EXPECT_EQ(ppl.admit(0.80, 1, 0), PplVerdict::kAdmit);
}

TEST(Ppl, HighPriorityDropsOnlyWhenFull) {
  Ppl ppl({.base_threshold = 0.5, .priority_levels = 2, .overload_cutoff = -1});
  EXPECT_EQ(ppl.admit(0.999, 1, 0), PplVerdict::kAdmit);
  EXPECT_EQ(ppl.admit(1.001, 1, 0), PplVerdict::kDropPriority);
}

TEST(Ppl, OverloadCutoffAppliesOnlyInOwnBand) {
  Ppl ppl({.base_threshold = 0.5, .priority_levels = 2,
           .overload_cutoff = 10000});
  // Low priority (level 1) band is (0.5, 0.75].
  // In-band, beyond the overload cutoff -> dropped.
  EXPECT_EQ(ppl.admit(0.6, 0, 20000), PplVerdict::kDropOverload);
  // In-band, before the cutoff -> admitted.
  EXPECT_EQ(ppl.admit(0.6, 0, 5000), PplVerdict::kAdmit);
  // High priority (level 2) band is (0.75, 1.0]: at 0.6 it is below its
  // band, so no cutoff applies even beyond the threshold.
  EXPECT_EQ(ppl.admit(0.6, 1, 20000), PplVerdict::kAdmit);
  // High priority inside its own band respects the cutoff.
  EXPECT_EQ(ppl.admit(0.8, 1, 20000), PplVerdict::kDropOverload);
}

TEST(Ppl, DisabledOverloadCutoffAdmitsInBand) {
  Ppl ppl({.base_threshold = 0.5, .priority_levels = 1, .overload_cutoff = -1});
  EXPECT_EQ(ppl.admit(0.7, 0, 1u << 30), PplVerdict::kAdmit);
}

TEST(Ppl, SinglePriorityBandCoversWholeRange) {
  Ppl ppl({.base_threshold = 0.5, .priority_levels = 1, .overload_cutoff = 100});
  EXPECT_DOUBLE_EQ(ppl.watermark(0), 1.0);
  EXPECT_EQ(ppl.admit(0.9, 0, 50), PplVerdict::kAdmit);
  EXPECT_EQ(ppl.admit(0.9, 0, 150), PplVerdict::kDropOverload);
}

TEST(Ppl, PriorityAboveLevelsClampsToTop) {
  Ppl ppl({.base_threshold = 0.5, .priority_levels = 2});
  EXPECT_DOUBLE_EQ(ppl.watermark(7), 1.0);
}

TEST(Ppl, SanitizesDegenerateConfig) {
  Ppl ppl({.base_threshold = -3.0, .priority_levels = 0});
  EXPECT_EQ(ppl.config().priority_levels, 1);
  EXPECT_DOUBLE_EQ(ppl.config().base_threshold, 0.0);
}

// Boundary semantics at exact watermark equality. With base 0.5 and two
// levels the watermarks land on 0.75 and 1.0 — exactly representable in
// binary floating point, so these comparisons are precise, not approximate.
// The rule: a watermark belongs to the band *below* it. admit() drops on
// `used > watermark_i` (strict) and band membership is
// (watermark_{i-1}, watermark_i], checked with `used <= lower` on the way in.
TEST(Ppl, ExactWatermarkEqualityBelongsToLowerBand) {
  Ppl ppl({.base_threshold = 0.5, .priority_levels = 2,
           .overload_cutoff = -1});
  // used == base_threshold: no drops of any kind (<= base admits).
  EXPECT_EQ(ppl.admit(0.5, 0, 1u << 30), PplVerdict::kAdmit);
  // used exactly at watermark_1 = 0.75: priority 0 is still in its band,
  // not above it — admitted, not kDropPriority.
  EXPECT_EQ(ppl.admit(0.75, 0, 0), PplVerdict::kAdmit);
  // The tiniest step above the watermark flips it to a priority drop.
  EXPECT_EQ(ppl.admit(std::nextafter(0.75, 1.0), 0, 0),
            PplVerdict::kDropPriority);
  // used exactly at watermark_2 = 1.0: top priority still admitted.
  EXPECT_EQ(ppl.admit(1.0, 1, 0), PplVerdict::kAdmit);
}

TEST(Ppl, ExactLowerWatermarkIsOutsideTheBandCutoff) {
  Ppl ppl({.base_threshold = 0.5, .priority_levels = 2,
           .overload_cutoff = 100});
  // used == watermark_1 = 0.75 is priority 1's *lower* watermark: the band
  // is (0.75, 1.0], so at exactly 0.75 the cutoff must not apply even for
  // offsets far beyond it.
  EXPECT_EQ(ppl.admit(0.75, 1, 1u << 30), PplVerdict::kAdmit);
  // One ulp above the lower watermark the cutoff engages.
  EXPECT_EQ(ppl.admit(std::nextafter(0.75, 1.0), 1, 1u << 30),
            PplVerdict::kDropOverload);
  // Offset exactly at the cutoff is already beyond it (>= drops).
  EXPECT_EQ(ppl.admit(0.8, 1, 100), PplVerdict::kDropOverload);
  EXPECT_EQ(ppl.admit(0.8, 1, 99), PplVerdict::kAdmit);
}

// Property sweep: a higher-priority packet is never dropped at a memory
// level where a lower-priority packet is admitted.
class PplMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(PplMonotonicity, HigherPriorityNeverWorse) {
  const int levels = GetParam();
  Ppl ppl({.base_threshold = 0.4, .priority_levels = levels,
           .overload_cutoff = -1});
  for (double used = 0.0; used <= 1.05; used += 0.01) {
    for (int p = 0; p + 1 < levels; ++p) {
      const bool low_ok = ppl.admit(used, p, 0) == PplVerdict::kAdmit;
      const bool high_ok = ppl.admit(used, p + 1, 0) == PplVerdict::kAdmit;
      EXPECT_TRUE(!low_ok || high_ok)
          << "used=" << used << " priority " << p + 1 << " dropped while "
          << p << " admitted";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, PplMonotonicity,
                         ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
}  // namespace scap::kernel
