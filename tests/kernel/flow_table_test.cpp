#include "kernel/flow_table.hpp"

#include <gtest/gtest.h>

namespace scap::kernel {
namespace {

FiveTuple tuple(std::uint16_t port) {
  return {0x0a000001, 0x0a000002, port, 80, kProtoTcp};
}

TEST(FlowTable, CreateAndFind) {
  FlowTable table;
  auto* rec = table.create(tuple(1), Timestamp(0), nullptr);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(table.find(tuple(1)), rec);
  EXPECT_EQ(table.find(tuple(2)), nullptr);
  EXPECT_EQ(table.by_id(rec->id), rec);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, IdsAreUnique) {
  FlowTable table;
  auto* a = table.create(tuple(1), Timestamp(0), nullptr);
  auto* b = table.create(tuple(2), Timestamp(0), nullptr);
  EXPECT_NE(a->id, b->id);
}

TEST(FlowTable, RemoveUnlinksOpposite) {
  FlowTable table;
  auto* a = table.create(tuple(1), Timestamp(0), nullptr);
  auto* b = table.create(tuple(1).reversed(), Timestamp(0), nullptr);
  a->opposite = b->id;
  b->opposite = a->id;
  table.remove(*a);
  EXPECT_EQ(b->opposite, kInvalidStreamId);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, EvictsOldestWhenBudgetExhausted) {
  FlowTable table(/*max_records=*/3);
  table.create(tuple(1), Timestamp(1), nullptr);
  table.create(tuple(2), Timestamp(2), nullptr);
  table.create(tuple(3), Timestamp(3), nullptr);
  // Touch tuple(1) so tuple(2) becomes the oldest.
  table.touch(*table.find(tuple(1)), Timestamp(4));

  StreamId evicted = kInvalidStreamId;
  table.create(tuple(4), Timestamp(5),
               [&](StreamRecord& victim) { evicted = victim.id; });
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.find(tuple(2)), nullptr);  // the oldest went
  EXPECT_NE(table.find(tuple(1)), nullptr);
  EXPECT_NE(evicted, kInvalidStreamId);
  EXPECT_EQ(table.evicted_total(), 1u);
}

TEST(FlowTable, BudgetExhaustionAlwaysYieldsARecord) {
  // Contract: with max_records > 0 and the budget exhausted, create always
  // succeeds by evicting the LRU victim — it never returns nullptr.
  constexpr std::size_t kBudget = 4;
  FlowTable table(kBudget);
  for (std::uint16_t i = 1; i <= 2 * kBudget; ++i) {
    int evictions = 0;
    auto* rec = table.create(tuple(i), Timestamp(i),
                             [&](StreamRecord&) { ++evictions; });
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(evictions, i > kBudget ? 1 : 0);
    EXPECT_LE(table.size(), kBudget);
    // Interleave touches so eviction order differs from creation order.
    if (auto* keep = table.find(tuple(1))) table.touch(*keep, Timestamp(i));
  }
  EXPECT_EQ(table.size(), kBudget);
  EXPECT_EQ(table.evicted_total(), kBudget);
  // tuple(1) was touched on every round and must have survived throughout.
  EXPECT_NE(table.find(tuple(1)), nullptr);
}

TEST(FlowTable, RecordPointersStableAcrossGrowth) {
  FlowTable table;  // unbounded: starts at minimum capacity and regrows
  std::vector<StreamRecord*> recs;
  for (std::uint16_t i = 0; i < 5000; ++i) {
    FiveTuple t{static_cast<std::uint32_t>(i), 3, i, 443, kProtoTcp};
    recs.push_back(table.create(t, Timestamp(i), nullptr));
  }
  for (std::uint16_t i = 0; i < 5000; ++i) {
    FiveTuple t{static_cast<std::uint32_t>(i), 3, i, 443, kProtoTcp};
    EXPECT_EQ(table.find(t), recs[i]);     // same slab-allocated record
    EXPECT_EQ(table.by_id(recs[i]->id), recs[i]);
  }
}

TEST(FlowTable, ExpireIdleRespectsPerStreamTimeout) {
  FlowTable table;
  auto* a = table.create(tuple(1), Timestamp(0), nullptr);
  a->params.inactivity_timeout = Duration::from_sec(5);
  auto* b = table.create(tuple(2), Timestamp(0), nullptr);
  b->params.inactivity_timeout = Duration::from_sec(60);

  int expired = 0;
  table.expire_idle(Timestamp::from_sec(10), [&](StreamRecord&) { ++expired; });
  EXPECT_EQ(expired, 1);  // only the 5s-timeout stream
  EXPECT_EQ(table.find(tuple(1)), nullptr);
  EXPECT_NE(table.find(tuple(2)), nullptr);
}

TEST(FlowTable, ExpireScanStopsAtFirstFreshStream) {
  // The access list is LRU-ordered, so one fresh stream at the tail side
  // shields newer ones; expiry must walk oldest-first.
  FlowTable table;
  for (std::uint16_t i = 1; i <= 5; ++i) {
    auto* rec = table.create(tuple(i), Timestamp::from_sec(i), nullptr);
    rec->params.inactivity_timeout = Duration::from_sec(10);
    table.touch(*rec, Timestamp::from_sec(i));
  }
  int expired = 0;
  table.expire_idle(Timestamp::from_sec(13),
                    [&](StreamRecord&) { ++expired; });
  // Streams touched at t=1,2,3 have been idle >= 10s at t=13; t=4,5 not.
  EXPECT_EQ(expired, 3);
  EXPECT_EQ(table.size(), 2u);
}

TEST(FlowTable, TouchMovesToFront) {
  FlowTable table;
  table.create(tuple(1), Timestamp(0), nullptr);
  table.create(tuple(2), Timestamp(1), nullptr);
  EXPECT_EQ(table.oldest(), table.find(tuple(1)));
  table.touch(*table.find(tuple(1)), Timestamp(2));
  EXPECT_EQ(table.oldest(), table.find(tuple(2)));
}

TEST(FlowTable, UnlimitedGrowth) {
  FlowTable table;  // max_records = 0
  for (std::uint16_t i = 0; i < 10000; ++i) {
    FiveTuple t{static_cast<std::uint32_t>(i), 2, i, 80, kProtoTcp};
    ASSERT_NE(table.create(t, Timestamp(i), nullptr), nullptr);
  }
  EXPECT_EQ(table.size(), 10000u);
  EXPECT_EQ(table.created_total(), 10000u);
  EXPECT_EQ(table.evicted_total(), 0u);
}

TEST(FlowTable, RemoveMiddleOfLruKeepsListIntact) {
  FlowTable table;
  table.create(tuple(1), Timestamp(0), nullptr);
  auto* b = table.create(tuple(2), Timestamp(1), nullptr);
  table.create(tuple(3), Timestamp(2), nullptr);
  table.remove(*b);
  // Walk the whole list via expiry with a huge now.
  int seen = 0;
  table.expire_idle(Timestamp::from_sec(1000), [&](StreamRecord&) { ++seen; });
  EXPECT_EQ(seen, 2);
  EXPECT_EQ(table.size(), 0u);
}

}  // namespace
}  // namespace scap::kernel
