// Randomized memory-accounting invariants: whatever mix of sessions,
// cutoffs, priorities, keep-chunks, and drain schedules runs through the
// kernel, every byte of chunk accounting must be returned by the end.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/rng.hpp"
#include "kernel/module.hpp"
#include "tests/kernel/test_helpers.hpp"

namespace scap::kernel {
namespace {

using testing::SessionBuilder;
using testing::client_tuple;

class MemoryInvariant : public ::testing::TestWithParam<int> {};

TEST_P(MemoryInvariant, AllChunkMemoryReturnedEventually) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 3);

  KernelConfig cfg;
  cfg.memory_size = 256 * 1024;  // tight, so failures/PPL paths also run
  cfg.defaults.chunk_size = 1u << (6 + rng.bounded(8));  // 64B..8KB
  cfg.ppl.base_threshold = 0.25 + rng.uniform() * 0.5;
  cfg.ppl.priority_levels = 1 + static_cast<int>(rng.bounded(3));
  cfg.ppl.overload_cutoff = rng.chance(0.5) ? 4096 : -1;
  if (rng.chance(0.3)) cfg.defaults.cutoff_bytes = rng.bounded(20000);
  cfg.defaults.mode = rng.chance(0.5) ? ReassemblyMode::kTcpFast
                                      : ReassemblyMode::kTcpStrict;
  ScapKernel k(cfg);

  std::vector<SessionBuilder> sessions;
  for (int i = 0; i < 30; ++i) {
    sessions.emplace_back(
        client_tuple(static_cast<std::uint16_t>(10000 + i),
                     static_cast<std::uint16_t>(80 + i % 5)));
  }
  std::vector<Event> undrained;
  Timestamp t(0);
  int keep_budget = 5;

  auto drain_some = [&] {
    auto& q = k.events(0);
    while (!q.empty()) {
      Event ev = q.pop();
      if (ev.type == EventType::kData && keep_budget > 0 &&
          rng.chance(0.1)) {
        // Occasionally exercise keep_stream_chunk.
        --keep_budget;
        const std::uint32_t alloc = ev.chunk_alloc;
        if (k.keep_stream_chunk(ev.stream.id, std::move(ev.chunk), alloc)) {
          continue;
        }
      }
      if (rng.chance(0.3)) {
        undrained.push_back(std::move(ev));  // release later
      } else {
        k.release_chunk(ev);
      }
    }
  };

  for (int step = 0; step < 3000; ++step) {
    auto& s = sessions[rng.bounded(sessions.size())];
    t = t + Duration::from_usec(static_cast<std::int64_t>(rng.bounded(500)));
    const double dice = rng.uniform();
    if (dice < 0.08) {
      k.handle_packet(s.syn(t), t);
    } else if (dice < 0.80) {
      std::string payload(1 + rng.bounded(2000), 'p');
      k.handle_packet(s.data(payload, t), t);
    } else if (dice < 0.86) {
      k.handle_packet(s.rst(t), t);
    } else if (dice < 0.92) {
      k.handle_packet(s.fin(t), t);
    } else if (dice < 0.96) {
      // Out-of-order resend around the current position.
      std::string payload(1 + rng.bounded(300), 'q');
      const std::uint32_t back =
          static_cast<std::uint32_t>(rng.bounded(4000));
      k.handle_packet(s.data_at(s.client_seq() - back, payload, t), t);
    } else {
      drain_some();
    }
    // Occasionally mutate per-stream knobs through the control API.
    if (rng.chance(0.02)) {
      if (StreamRecord* rec = k.table().find(s.tuple())) {
        if (rng.chance(0.5)) {
          k.set_stream_priority(rec->id, static_cast<int>(rng.bounded(3)));
        } else {
          k.set_stream_cutoff(rec->id,
                              static_cast<std::int64_t>(rng.bounded(30000)));
        }
      }
    }
  }

  k.terminate_all(t);
  drain_some();
  for (auto& ev : undrained) k.release_chunk(ev);
  undrained.clear();
  // Drain anything the final terminations emitted.
  auto& q = k.events(0);
  while (!q.empty()) {
    Event ev = q.pop();
    k.release_chunk(ev);
  }

  EXPECT_EQ(k.allocator().used(), 0u) << "leaked chunk accounting";
  EXPECT_EQ(k.table().size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryInvariant, ::testing::Range(0, 8));

}  // namespace
}  // namespace scap::kernel
