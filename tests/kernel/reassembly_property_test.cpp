// Property tests: TCP reassembly invariants under randomized segmentation,
// reordering, duplication, and overlap — for every target policy.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "kernel/reassembly.hpp"

namespace scap::kernel {
namespace {

std::string reconstruct(TcpReassembler& r) {
  std::string out;
  for (const auto& c : r.flush()) {
    out.append(c.data.begin() + c.overlap_len, c.data.end());
  }
  return out;
}

struct Segment {
  std::uint64_t off;
  std::uint32_t len;
};

/// Cut [0, total) into random segments, then duplicate and shuffle some.
std::vector<Segment> random_segments(Rng& rng, std::uint64_t total) {
  std::vector<Segment> segs;
  std::uint64_t off = 0;
  while (off < total) {
    const auto len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(1 + rng.bounded(900), total - off));
    segs.push_back({off, len});
    off += len;
  }
  // Duplicate ~20% of segments (retransmissions), possibly with different
  // boundaries (overlapping re-sends).
  const std::size_t n = segs.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(0.2)) {
      Segment dup = segs[i];
      if (rng.chance(0.5) && dup.len > 2) {
        // Re-send a shifted window overlapping two original segments.
        const std::uint32_t shift = 1 + static_cast<std::uint32_t>(
                                            rng.bounded(dup.len - 1));
        if (dup.off + shift + dup.len <= total) dup.off += shift;
      }
      segs.push_back(dup);
    }
  }
  // Shuffle (Fisher-Yates).
  for (std::size_t i = segs.size(); i > 1; --i) {
    std::swap(segs[i - 1], segs[rng.bounded(i)]);
  }
  return segs;
}

class ReassemblyProperty
    : public ::testing::TestWithParam<std::tuple<OverlapPolicy, int>> {};

TEST_P(ReassemblyProperty, StrictReconstructsExactlyWithConsistentData) {
  const auto [policy, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  const std::uint64_t total = 2000 + rng.bounded(30000);

  // Ground-truth byte stream (every copy of a byte is identical, as in a
  // well-behaved TCP connection).
  std::string truth(total, '\0');
  for (auto& ch : truth) {
    ch = static_cast<char>('a' + rng.bounded(26));
  }

  StreamParams params;
  params.mode = ReassemblyMode::kTcpStrict;
  params.policy = policy;
  params.chunk_size = 1 + static_cast<std::uint32_t>(rng.bounded(8192));
  TcpReassembler r(params, false, /*max_ooo_bytes=*/1ull << 30);
  r.on_syn(0);

  std::vector<Chunk> live;
  for (const Segment& s : random_segments(rng, total)) {
    SegmentMeta meta;
    auto res = r.on_data(
        1 + static_cast<std::uint32_t>(s.off),
        {reinterpret_cast<const std::uint8_t*>(truth.data()) + s.off, s.len},
        meta);
    // Consistent copies can never conflict.
    EXPECT_EQ(res.errors & kErrOverlapConflict, 0u);
    for (auto& c : res.completed) live.push_back(std::move(c));
  }
  std::string got;
  for (const auto& c : live) {
    got.append(c.data.begin() + c.overlap_len, c.data.end());
  }
  got += reconstruct(r);
  ASSERT_EQ(got, truth) << "policy=" << static_cast<int>(policy)
                        << " seed=" << seed;
}

TEST_P(ReassemblyProperty, FastModeNeverDeliversMoreThanSent) {
  const auto [policy, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 104729 + 7);
  const std::uint64_t total = 1000 + rng.bounded(20000);
  std::string truth(total, 'x');

  StreamParams params;
  params.mode = ReassemblyMode::kTcpFast;
  params.policy = policy;
  params.chunk_size = 4096;
  TcpReassembler r(params, false);
  r.on_syn(0);

  std::uint64_t delivered = 0;
  auto segs = random_segments(rng, total);
  // Drop ~20% of segments entirely (capture loss).
  std::vector<Segment> kept;
  for (const auto& s : segs) {
    if (!rng.chance(0.2)) kept.push_back(s);
  }
  for (const Segment& s : kept) {
    SegmentMeta meta;
    auto res = r.on_data(
        1 + static_cast<std::uint32_t>(s.off),
        {reinterpret_cast<const std::uint8_t*>(truth.data()) + s.off, s.len},
        meta);
    delivered += res.accepted_bytes;
  }
  EXPECT_LE(delivered, total);
  EXPECT_LE(r.stream_offset(), total);
  // Everything flushed still bounded.
  std::uint64_t flushed = 0;
  for (const auto& c : r.flush()) flushed += c.data.size();
  EXPECT_LE(flushed, delivered);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, ReassemblyProperty,
    ::testing::Combine(::testing::Values(OverlapPolicy::kFirst,
                                         OverlapPolicy::kLast,
                                         OverlapPolicy::kBsd,
                                         OverlapPolicy::kLinux),
                       ::testing::Range(0, 6)));

// Conflicting overlaps: whichever policy is in force, the reassembled
// stream must equal one of the two sent variants byte-for-byte in the
// contested range — never an interleaving torn WITHIN one overlap region.
TEST(ReassemblyConflicts, ContestedRangeIsCoherentPerPolicy) {
  for (auto policy : {OverlapPolicy::kFirst, OverlapPolicy::kLast}) {
    StreamParams params;
    params.mode = ReassemblyMode::kTcpStrict;
    params.policy = policy;
    params.chunk_size = 1 << 16;
    TcpReassembler r(params, false);
    r.on_syn(0);
    const std::string attack = "AAAAAAAAAAAAAAAA";
    const std::string benign = "BBBBBBBBBBBBBBBB";
    SegmentMeta meta;
    // Hole at the front keeps both copies buffered (policy applies).
    auto to_span = [](const std::string& s) {
      return std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
    };
    r.on_data(11, to_span(attack), meta);
    auto res = r.on_data(11, to_span(benign), meta);
    EXPECT_NE(res.errors & kErrOverlapConflict, 0u);
    r.on_data(1, to_span("0123456789"), meta);
    std::string got = reconstruct(r);
    ASSERT_EQ(got.size(), 26u);
    const std::string contested = got.substr(10);
    EXPECT_TRUE(contested == attack || contested == benign) << contested;
    EXPECT_EQ(contested, policy == OverlapPolicy::kFirst ? attack : benign);
  }
}

}  // namespace
}  // namespace scap::kernel
