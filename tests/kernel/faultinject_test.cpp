// Fault-injection harness (DESIGN.md §8): schedules are deterministic, and
// every injected fault surfaces as exactly one counter increment in the
// component it hit — never a crash, never silent loss.
#include "faultinject/faultinject.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "faultinject/adversary.hpp"
#include "kernel/module.hpp"
#include "nic/nic.hpp"
#include "tests/kernel/test_helpers.hpp"

namespace scap::kernel {
namespace {

using faultinject::AdversaryConfig;
using faultinject::AdversaryGen;
using faultinject::FaultInjector;
using faultinject::FaultPoint;
using faultinject::FaultScope;
using faultinject::InjectionPlan;
using testing::SessionBuilder;

KernelConfig small_config() {
  KernelConfig cfg;
  cfg.memory_size = 1 << 20;
  cfg.defaults.chunk_size = 64;
  return cfg;
}

/// Drain all events so chunk accounting is released.
void drain(ScapKernel& k, int core = 0) {
  auto& q = k.events(core);
  while (!q.empty()) k.release_chunk(q.pop());
}

// --- injector mechanics ------------------------------------------------------

TEST(FaultInjector, EveryNFailsOnExactOrdinals) {
  InjectionPlan plan;
  plan.at(FaultPoint::kChunkAlloc).every_n = 3;
  FaultInjector inj(plan);
  std::vector<bool> decisions;
  for (int i = 0; i < 9; ++i) decisions.push_back(inj.roll(FaultPoint::kChunkAlloc));
  EXPECT_EQ(decisions, (std::vector<bool>{false, false, true, false, false,
                                          true, false, false, true}));
  EXPECT_EQ(inj.calls(FaultPoint::kChunkAlloc), 9u);
  EXPECT_EQ(inj.injected(FaultPoint::kChunkAlloc), 3u);
  // Other points are untouched.
  EXPECT_EQ(inj.calls(FaultPoint::kFdirAdd), 0u);
}

TEST(FaultInjector, ProbabilisticScheduleIsSeedDeterministic) {
  InjectionPlan plan = InjectionPlan::uniform(0xfeed, 0.25);
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int i = 0; i < 1000; ++i) {
    for (std::size_t p = 0; p < faultinject::kNumFaultPoints; ++p) {
      const auto point = static_cast<FaultPoint>(p);
      EXPECT_EQ(a.roll(point), b.roll(point)) << "call " << i << " point " << p;
    }
  }
  EXPECT_GT(a.injected_total(), 0u);
  EXPECT_EQ(a.injected_total(), b.injected_total());
}

TEST(FaultInjector, PointStreamsAreIndependent) {
  // Interleaving calls to another point must not perturb a point's own
  // decision sequence: decisions depend only on the per-point ordinal.
  InjectionPlan plan = InjectionPlan::uniform(42, 0.3);
  FaultInjector alone(plan);
  std::vector<bool> expect;
  for (int i = 0; i < 200; ++i) expect.push_back(alone.roll(FaultPoint::kChunkAlloc));

  FaultInjector mixed(plan);
  for (int i = 0; i < 200; ++i) {
    mixed.roll(FaultPoint::kFdirAdd);  // noise on a different point
    EXPECT_EQ(mixed.roll(FaultPoint::kChunkAlloc), expect[static_cast<std::size_t>(i)]);
  }
}

TEST(FaultScope, NestedScopesRestorePrevious) {
  EXPECT_EQ(faultinject::installed(), nullptr);
  InjectionPlan plan;
  FaultInjector outer(plan);
  {
    FaultScope a(outer);
    EXPECT_EQ(faultinject::installed(), &outer);
    FaultInjector inner(plan);
    {
      FaultScope b(inner);
      EXPECT_EQ(faultinject::installed(), &inner);
    }
    EXPECT_EQ(faultinject::installed(), &outer);
  }
  EXPECT_EQ(faultinject::installed(), nullptr);
  EXPECT_FALSE(faultinject::should_fail(FaultPoint::kChunkAlloc));
}

// --- fault -> counter mapping ------------------------------------------------

TEST(FaultMapping, RecordPoolFaultBecomesNoRecordDrop) {
  ScapKernel k(small_config());
  SessionBuilder s;
  Timestamp t(0);

  InjectionPlan plan;
  plan.at(FaultPoint::kRecordPoolAcquire).every_n = 1;  // every acquire fails
  FaultInjector inj(plan);
  FaultScope scope(inj);

  auto out = k.handle_packet(s.syn(t), t);
  EXPECT_EQ(out.verdict, Verdict::kNoRecordDrop);
  EXPECT_FALSE(out.created_stream);
  EXPECT_EQ(k.stats().pkts_norec_dropped, 1u);
  EXPECT_EQ(k.stats().streams_created, 0u);
  EXPECT_EQ(k.table().size(), 0u);
  EXPECT_EQ(inj.injected(FaultPoint::kRecordPoolAcquire), 1u);
  // The pool counts the same event from its side.
  EXPECT_EQ(k.table().pool_stats().acquire_failures, 1u);
}

TEST(FaultMapping, ChunkAllocFaultBecomesNoMemDrop) {
  ScapKernel k(small_config());
  SessionBuilder s;
  Timestamp t(0);
  k.handle_packet(s.syn(t), t);
  k.handle_packet(s.syn_ack(t), t);
  k.handle_packet(s.ack(t), t);

  InjectionPlan plan;
  plan.at(FaultPoint::kChunkAlloc).every_n = 1;
  FaultInjector inj(plan);
  {
    FaultScope scope(inj);
    auto out = k.handle_packet(s.data("payload", t), t);
    EXPECT_EQ(out.verdict, Verdict::kNoMemDrop);
  }
  EXPECT_EQ(k.stats().pkts_nomem_dropped, 1u);
  EXPECT_GE(k.allocator().failures(), 1u);
  // The stream survives the fault; the next packet (no injector) stores.
  auto out = k.handle_packet(s.data("payload2", t), t);
  EXPECT_EQ(out.verdict, Verdict::kStored);
  k.terminate_all(t);
  drain(k);
}

TEST(FaultMapping, SegmentStoreFaultBecomesReasmAllocFailure) {
  KernelConfig cfg = small_config();
  cfg.defaults.mode = ReassemblyMode::kTcpStrict;
  ScapKernel k(cfg);
  SessionBuilder s;
  Timestamp t(0);
  k.handle_packet(s.syn(t), t);
  k.handle_packet(s.syn_ack(t), t);
  k.handle_packet(s.ack(t), t);

  InjectionPlan plan;
  plan.at(FaultPoint::kSegmentStoreInsert).every_n = 1;
  FaultInjector inj(plan);
  {
    FaultScope scope(inj);
    // Out-of-order segment: strict mode must buffer it -> injected failure.
    auto out = k.handle_packet(
        s.data_at(s.client_seq() + 100, "future data", t), t);
    EXPECT_EQ(out.verdict, Verdict::kNoMemDrop);
  }
  EXPECT_EQ(k.stats().reasm_alloc_failures, 1u);
  EXPECT_EQ(k.stats().pkts_nomem_dropped, 1u);
  EXPECT_EQ(inj.injected(FaultPoint::kSegmentStoreInsert), 1u);
  // In-order data afterwards still flows.
  auto out = k.handle_packet(s.data("now", t), t);
  EXPECT_EQ(out.verdict, Verdict::kStored);
  k.terminate_all(t);
  drain(k);
}

TEST(FaultMapping, FdirAddFaultBecomesInstallFailure) {
  nic::Nic nic(1);
  KernelConfig cfg = small_config();
  cfg.use_fdir = true;
  cfg.defaults.cutoff_bytes = 4;  // trip the cutoff on the first segment
  ScapKernel k(cfg, &nic);
  SessionBuilder s;
  Timestamp t(0);
  k.handle_packet(s.syn(t), t);
  k.handle_packet(s.syn_ack(t), t);
  k.handle_packet(s.ack(t), t);

  InjectionPlan plan;
  plan.at(FaultPoint::kFdirAdd).every_n = 1;
  FaultInjector inj(plan);
  {
    FaultScope scope(inj);
    k.handle_packet(s.data("well beyond the four-byte cutoff", t), t);
  }
  EXPECT_GE(inj.injected(FaultPoint::kFdirAdd), 1u);
  // Every injected add surfaced in both the NIC's and the kernel's counter,
  // and nothing was left half-installed.
  EXPECT_EQ(nic.fdir().add_failures(), inj.injected(FaultPoint::kFdirAdd));
  EXPECT_EQ(k.stats().fdir_install_failures,
            inj.injected(FaultPoint::kFdirAdd));
  EXPECT_EQ(nic.fdir().size(), 0u);
  k.terminate_all(t);
  drain(k);
}

// --- whole-run determinism ---------------------------------------------------

/// One full adversarial run: seeded traffic, seeded faults, final stats.
KernelStats adversarial_run(std::uint64_t seed) {
  KernelConfig cfg;
  cfg.memory_size = 256 * 1024;
  cfg.defaults.chunk_size = 1024;
  cfg.defaults.mode = ReassemblyMode::kTcpStrict;
  cfg.defragment_ip = true;
  cfg.max_streams = 64;
  ScapKernel k(cfg);

  InjectionPlan plan = InjectionPlan::uniform(seed, 0.02);
  FaultInjector inj(plan);
  FaultScope scope(inj);

  AdversaryConfig acfg;
  acfg.seed = seed;
  acfg.packets = 5000;
  AdversaryGen gen(acfg);
  for (std::uint64_t i = 0; i < acfg.packets; ++i) {
    const Packet pkt = gen.next();
    k.handle_packet(pkt, pkt.timestamp());
    drain(k);
  }
  k.terminate_all(Timestamp::from_sec(60));
  drain(k);
  return k.stats();
}

TEST(FaultDeterminism, IdenticalSeedsProduceIdenticalKernelStats) {
  const KernelStats a = adversarial_run(0xc0ffee);
  const KernelStats b = adversarial_run(0xc0ffee);
  // KernelStats is all 64-bit counters: byte comparison is exact.
  EXPECT_EQ(std::memcmp(&a, &b, sizeof(KernelStats)), 0);

  // A different seed must actually change the run (the schedule is live).
  const KernelStats c = adversarial_run(0xbead);
  EXPECT_NE(std::memcmp(&a, &c, sizeof(KernelStats)), 0);
}

TEST(FaultDeterminism, TaxonomySumsToInvalidUnderFaults) {
  const KernelStats s = adversarial_run(0x5eed);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < kNumDecodeErrors; ++i) sum += s.parse_errors[i];
  EXPECT_EQ(sum, s.pkts_invalid);
  EXPECT_GT(s.pkts_invalid, 0u);         // the adversary really sent garbage
  EXPECT_GT(s.pkts_norec_dropped, 0u);   // record faults really landed
}

}  // namespace
}  // namespace scap::kernel
