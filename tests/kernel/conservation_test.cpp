// Counter-conservation under hostile load (DESIGN.md §9).
//
// Drives ScapKernel with the AdversaryGen traffic mix — well-formed
// sessions interleaved with garbage frames, header mutations, SYN floods
// and orphan fragments — under memory pressure, and asserts the kernel's
// full conservation suite (KernelStats::check_conservation plus the PPL
// monotonicity checks in ScapKernel::check_invariants) at every
// maintenance tick and after final teardown:
//
//   pkts_seen   == Σ verdict histogram
//   per-verdict scalar == its histogram bucket (13 pairs)
//   Σ parse_errors     == pkts_invalid
//   streams_created    == terminated + evicted + active
//   pool in-use        == streams_active
//
// Multiple seeds, 50k packets each: a counter increment added without its
// verdict (or vice versa) fails here within a few thousand packets.

#include <gtest/gtest.h>

#include <cstdint>

#include "faultinject/adversary.hpp"
#include "kernel/module.hpp"

namespace scap::kernel {
namespace {

using faultinject::AdversaryConfig;
using faultinject::AdversaryGen;

KernelConfig hostile_config() {
  KernelConfig cfg;
  // Small buffer: the mix must reach the PPL / exhaustion drop paths.
  cfg.memory_size = 96 * 1024;
  cfg.defaults.chunk_size = 4 * 1024;
  cfg.defaults.cutoff_bytes = 16 * 1024;
  cfg.defaults.inactivity_timeout = Duration::from_sec(5);
  cfg.ppl.base_threshold = 0.6;
  cfg.ppl.priority_levels = 4;
  cfg.defragment_ip = true;
  return cfg;
}

void drain(ScapKernel& k) {
  auto& q = k.events(0);
  while (!q.empty()) {
    Event ev = q.pop();
    k.release_chunk(ev);
  }
}

class ConservationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConservationTest, HostileMixHoldsAllLaws) {
  ScapKernel k(hostile_config());

  AdversaryConfig acfg;
  acfg.seed = GetParam();
  acfg.packets = 50000;
  // One maintenance tick (expiry_interval = 1s) every ~1000 packets.
  acfg.spacing = Duration::from_usec(1000);
  AdversaryGen gen(acfg);

  Timestamp now = acfg.start;
  Timestamp next_tick = now + Duration::from_sec(1);
  for (std::uint64_t i = 0; i < acfg.packets; ++i) {
    Packet pkt = gen.next();
    now = pkt.timestamp();
    k.handle_packet(pkt, now);
    if (now >= next_tick) {
      k.run_maintenance(now);
      next_tick = now + Duration::from_sec(1);
      ASSERT_EQ(k.check_invariants(), "")
          << "after " << (i + 1) << " packets (seed " << acfg.seed << ")";
      drain(k);
    }
  }

  k.terminate_all(now);
  drain(k);
  EXPECT_EQ(k.check_invariants(), "") << "after teardown";

  // The run must actually have exercised the interesting buckets.
  const KernelStats& s = k.stats();
  EXPECT_GT(s.pkts_stored, 0u);
  EXPECT_GT(s.pkts_invalid, 0u);
  EXPECT_GT(s.pkts_frag_held, 0u);
  EXPECT_GT(s.streams_created, 0u);
  EXPECT_EQ(s.streams_active, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationTest,
                         ::testing::Values(1u, 17u, 4242u));

}  // namespace
}  // namespace scap::kernel
