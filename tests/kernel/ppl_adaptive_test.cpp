// Adaptive overload controller (DESIGN.md §8): EWMA pressure tracking with
// a hysteresis state machine driving the effective in-band cutoff.
#include <gtest/gtest.h>

#include <cstdint>

#include "base/rng.hpp"
#include "kernel/ppl.hpp"

namespace scap::kernel {
namespace {

PplConfig adaptive_config() {
  PplConfig c;
  c.base_threshold = 0.5;
  c.priority_levels = 2;
  c.overload_cutoff = -1;  // static cutoff off: only the controller acts
  c.adaptive = true;
  c.ewma_alpha = 0.3;
  c.enter_fraction = 0.85;
  c.exit_fraction = 0.70;
  c.start_cutoff = 64 * 1024;
  c.min_cutoff = 4 * 1024;
  return c;
}

TEST(PplAdaptive, DisabledControllerIsInert) {
  PplConfig c = adaptive_config();
  c.adaptive = false;
  c.overload_cutoff = 1234;
  Ppl ppl(c);
  for (int i = 0; i < 100; ++i) ppl.observe(1.0);
  EXPECT_FALSE(ppl.controller().overload);
  EXPECT_EQ(ppl.effective_cutoff(), 1234);
}

TEST(PplAdaptive, EntersOverloadAtStartCutoffThenTightensToFloor) {
  Ppl ppl(adaptive_config());
  const PplConfig& c = ppl.config();

  int entered_at = -1;
  for (int i = 0; i < 64; ++i) {
    ppl.observe(1.0);
    if (ppl.controller().overload && entered_at < 0) {
      entered_at = i;
      // First overloaded sample applies the start cutoff, not the floor.
      EXPECT_EQ(ppl.effective_cutoff(), c.start_cutoff);
    }
  }
  ASSERT_GE(entered_at, 0) << "sustained pressure never entered overload";
  EXPECT_EQ(ppl.controller().overload_entries, 1u);
  // Sustained pressure tightened the cutoff all the way to the floor...
  EXPECT_EQ(ppl.effective_cutoff(), c.min_cutoff);
  // ...in log2(start/min) = 4 halvings, each counted once.
  EXPECT_EQ(ppl.controller().tightenings, 4u);
}

TEST(PplAdaptive, RelaxesStepwiseAndExitsCleanly) {
  Ppl ppl(adaptive_config());
  for (int i = 0; i < 64; ++i) ppl.observe(1.0);
  ASSERT_TRUE(ppl.controller().overload);
  ASSERT_EQ(ppl.effective_cutoff(), ppl.config().min_cutoff);

  for (int i = 0; i < 64; ++i) ppl.observe(0.0);
  EXPECT_FALSE(ppl.controller().overload);
  EXPECT_EQ(ppl.controller().overload_exits, 1u);
  // 4k -> 8k -> 16k -> 32k -> 64k -> exit: four counted relaxations.
  EXPECT_EQ(ppl.controller().relaxations, 4u);
  // Out of overload the static configuration applies again (-1 = none).
  EXPECT_EQ(ppl.effective_cutoff(), -1);
}

TEST(PplAdaptive, HoldBandFreezesTheCutoff) {
  Ppl ppl(adaptive_config());
  for (int i = 0; i < 8; ++i) ppl.observe(1.0);  // enter + tighten a little
  ASSERT_TRUE(ppl.controller().overload);

  // Samples of 0.78 pull the EWMA into (exit=0.70, enter=0.85); give it a
  // few samples to decay below the enter threshold, then the state must be
  // frozen: no transitions, no cutoff movement, however long it lasts.
  for (int i = 0; i < 10; ++i) ppl.observe(0.78);
  const std::int64_t frozen = ppl.effective_cutoff();
  const std::uint64_t tightenings = ppl.controller().tightenings;
  for (int i = 0; i < 1000; ++i) ppl.observe(0.78);
  EXPECT_TRUE(ppl.controller().overload);
  EXPECT_EQ(ppl.effective_cutoff(), frozen);
  EXPECT_EQ(ppl.controller().tightenings, tightenings);
  EXPECT_EQ(ppl.controller().relaxations, 0u);
  EXPECT_EQ(ppl.controller().overload_entries, 1u);
  EXPECT_EQ(ppl.controller().overload_exits, 0u);
}

// The anti-oscillation property the hysteresis band buys: pressure that
// flaps around a *single* threshold (the failure mode of a naive
// controller) crosses the band's midpoint every sample, yet causes at most
// one enter/exit transition pair, because the EWMA settles inside the band.
TEST(PplAdaptive, NoOscillationAcrossTheHysteresisBand) {
  Ppl ppl(adaptive_config());
  for (int i = 0; i < 500; ++i) {
    ppl.observe((i % 2) == 0 ? 0.95 : 0.60);  // mean 0.775, inside the band
  }
  const PplControllerState& st = ppl.controller();
  EXPECT_LE(st.overload_entries + st.overload_exits, 2u)
      << "controller flapped: " << st.overload_entries << " entries, "
      << st.overload_exits << " exits";
}

// Step-load convergence: a burst of overload followed by calm converges to
// exactly one entry and one exit with bounded cutoff motion.
TEST(PplAdaptive, StepLoadConvergesWithoutRinging) {
  Ppl ppl(adaptive_config());
  for (int i = 0; i < 200; ++i) ppl.observe(0.95);
  for (int i = 0; i < 200; ++i) ppl.observe(0.40);
  const PplControllerState& st = ppl.controller();
  EXPECT_EQ(st.overload_entries, 1u);
  EXPECT_EQ(st.overload_exits, 1u);
  EXPECT_FALSE(st.overload);
  EXPECT_EQ(st.tightenings, 4u);   // start 64k -> floor 4k
  EXPECT_EQ(st.relaxations, 4u);   // floor 4k -> past start -> exit
}

// The paper's PPL invariant must survive adaptation: the controller only
// moves the in-band cutoff, never the watermark ladder, so (a) a
// higher-priority packet is never dropped while a lower-priority one is
// admitted, and (b) offset-0 admission decisions are identical to the
// static controller's at every point of a random pressure schedule.
TEST(PplAdaptive, PriorityInvariantHoldsThroughoutAdaptation) {
  PplConfig cfg = adaptive_config();
  Ppl adaptive(cfg);
  cfg.adaptive = false;
  Ppl fixed(cfg);

  Rng rng(0xada9f1ull);
  for (int step = 0; step < 400; ++step) {
    adaptive.observe(rng.uniform());
    for (double used = 0.0; used <= 1.0; used += 0.05) {
      for (int p = 0; p + 1 < cfg.priority_levels; ++p) {
        const bool low_ok =
            adaptive.admit(used, p, 0) == PplVerdict::kAdmit;
        const bool high_ok =
            adaptive.admit(used, p + 1, 0) == PplVerdict::kAdmit;
        EXPECT_TRUE(!low_ok || high_ok)
            << "step " << step << " used " << used << ": priority " << p + 1
            << " dropped while " << p << " admitted";
      }
      // min_cutoff >= 1, so offset 0 is never beyond any adapted cutoff:
      // adaptation must not change which packets drop at stream start.
      for (int p = 0; p < cfg.priority_levels; ++p) {
        EXPECT_EQ(adaptive.admit(used, p, 0), fixed.admit(used, p, 0))
            << "adaptation changed an offset-0 verdict at used=" << used;
      }
    }
  }
}

// Degenerate configurations must sanitize into a working controller.
TEST(PplAdaptive, SanitizesDegenerateAdaptiveConfig) {
  PplConfig c;
  c.adaptive = true;
  c.ewma_alpha = -2.0;        // -> default 0.3
  c.enter_fraction = 1.5;     // -> 1.0
  c.exit_fraction = 2.0;      // -> clamped to enter
  c.min_cutoff = -5;          // -> 1
  c.start_cutoff = -100;      // -> min_cutoff
  c.tighten_factor = 3.0;     // -> default 0.5
  c.relax_factor = 0.5;       // -> default 2.0
  Ppl ppl(c);
  EXPECT_GT(ppl.config().ewma_alpha, 0.0);
  EXPECT_LE(ppl.config().ewma_alpha, 1.0);
  EXPECT_LE(ppl.config().exit_fraction, ppl.config().enter_fraction);
  EXPECT_GE(ppl.config().min_cutoff, 1);
  EXPECT_GE(ppl.config().start_cutoff, ppl.config().min_cutoff);
  EXPECT_LT(ppl.config().tighten_factor, 1.0);
  EXPECT_GT(ppl.config().relax_factor, 1.0);
  // Must not wedge: samples beyond [0,1] clamp and the EWMA stays bounded.
  for (int i = 0; i < 100; ++i) ppl.observe(7.0);
  EXPECT_LE(ppl.controller().pressure_ewma, 1.0);
}

}  // namespace
}  // namespace scap::kernel
