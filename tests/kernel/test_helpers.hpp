// Shared helpers for kernel-level tests: hand-crafted TCP session packet
// sequences with precise control over sequence numbers, flags and timing,
// plus the conservation-check hook test fixtures run at teardown.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/module.hpp"
#include "packet/craft.hpp"
#include "packet/packet.hpp"

namespace scap::kernel::testing {

/// Asserts the kernel's full conservation suite (DESIGN.md §9). Fixtures
/// call this from TearDown so every scenario — not only the ones written
/// to probe accounting — proves the counter-conservation law on exit.
inline void expect_invariants_hold(ScapKernel& k) {
  EXPECT_EQ(k.check_invariants(), "") << "conservation violated at teardown";
}

/// Fixture base: tests that own a ScapKernel register it once and inherit
/// the teardown conservation check.
class KernelInvariantTest : public ::testing::Test {
 protected:
  void register_kernel(ScapKernel& k) { kernel_ = &k; }
  void TearDown() override {
    if (kernel_ != nullptr) expect_invariants_hold(*kernel_);
  }

 private:
  ScapKernel* kernel_ = nullptr;
};

/// Scope guard for plain TEST()s driving a ScapKernel: declare right after
/// the kernel and the conservation suite is asserted on scope exit, however
/// the test ends.
class KernelInvariantGuard {
 public:
  explicit KernelInvariantGuard(ScapKernel& k) : kernel_(k) {}
  ~KernelInvariantGuard() { expect_invariants_hold(kernel_); }
  KernelInvariantGuard(const KernelInvariantGuard&) = delete;
  KernelInvariantGuard& operator=(const KernelInvariantGuard&) = delete;

 private:
  ScapKernel& kernel_;
};

/// Same for capture-level tests (templated so this kernel-layer header
/// does not depend on scap/capture.hpp). Declare after cap.start() — the
/// capture owns its kernel(s) only once started. Uses the capture's own
/// check_invariants() so the same guard covers inline captures and
/// sharded ones (every shard plus the aggregate).
template <typename CaptureT>
class CaptureInvariantGuard {
 public:
  explicit CaptureInvariantGuard(CaptureT& cap) : cap_(cap) {}
  ~CaptureInvariantGuard() {
    EXPECT_EQ(cap_.check_invariants(), "")
        << "conservation violated at teardown";
  }
  CaptureInvariantGuard(const CaptureInvariantGuard&) = delete;
  CaptureInvariantGuard& operator=(const CaptureInvariantGuard&) = delete;

 private:
  CaptureT& cap_;
};

inline FiveTuple client_tuple(std::uint16_t src_port = 40000,
                              std::uint16_t dst_port = 80) {
  return {0x0a000001, 0x0a000002, src_port, dst_port, kProtoTcp};
}

inline std::span<const std::uint8_t> bytes_of(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Builds a plausible TCP session packet-by-packet.
class SessionBuilder {
 public:
  explicit SessionBuilder(FiveTuple tuple = client_tuple(),
                          std::uint32_t client_isn = 1000,
                          std::uint32_t server_isn = 5000)
      : tuple_(tuple),
        client_seq_(client_isn),
        server_seq_(server_isn) {}

  Packet syn(Timestamp ts) {
    TcpSegmentSpec s;
    s.tuple = tuple_;
    s.seq = client_seq_++;
    s.flags = kTcpSyn;
    return make_tcp_packet(s, ts);
  }

  Packet syn_ack(Timestamp ts) {
    TcpSegmentSpec s;
    s.tuple = tuple_.reversed();
    s.seq = server_seq_++;
    s.ack = client_seq_;
    s.flags = kTcpSyn | kTcpAck;
    return make_tcp_packet(s, ts);
  }

  Packet ack(Timestamp ts) {
    TcpSegmentSpec s;
    s.tuple = tuple_;
    s.seq = client_seq_;
    s.ack = server_seq_;
    s.flags = kTcpAck;
    return make_tcp_packet(s, ts);
  }

  /// Client -> server data; advances the client sequence.
  Packet data(const std::string& payload, Timestamp ts) {
    TcpSegmentSpec s;
    s.tuple = tuple_;
    s.seq = client_seq_;
    s.ack = server_seq_;
    s.flags = kTcpAck | kTcpPsh;
    s.payload = bytes_of(payload);
    client_seq_ += static_cast<std::uint32_t>(payload.size());
    return make_tcp_packet(s, ts);
  }

  /// Client -> server data at an explicit sequence (no state advance).
  Packet data_at(std::uint32_t seq, const std::string& payload, Timestamp ts) {
    TcpSegmentSpec s;
    s.tuple = tuple_;
    s.seq = seq;
    s.ack = server_seq_;
    s.flags = kTcpAck | kTcpPsh;
    s.payload = bytes_of(payload);
    return make_tcp_packet(s, ts);
  }

  /// Server -> client data; advances the server sequence.
  Packet reply_data(const std::string& payload, Timestamp ts) {
    TcpSegmentSpec s;
    s.tuple = tuple_.reversed();
    s.seq = server_seq_;
    s.ack = client_seq_;
    s.flags = kTcpAck | kTcpPsh;
    s.payload = bytes_of(payload);
    server_seq_ += static_cast<std::uint32_t>(payload.size());
    return make_tcp_packet(s, ts);
  }

  Packet fin(Timestamp ts) {
    TcpSegmentSpec s;
    s.tuple = tuple_;
    s.seq = client_seq_++;
    s.ack = server_seq_;
    s.flags = kTcpFin | kTcpAck;
    return make_tcp_packet(s, ts);
  }

  Packet rst(Timestamp ts) {
    TcpSegmentSpec s;
    s.tuple = tuple_;
    s.seq = client_seq_;
    s.flags = kTcpRst;
    return make_tcp_packet(s, ts);
  }

  const FiveTuple& tuple() const { return tuple_; }
  std::uint32_t client_seq() const { return client_seq_; }
  std::uint32_t server_seq() const { return server_seq_; }

 private:
  FiveTuple tuple_;
  std::uint32_t client_seq_;
  std::uint32_t server_seq_;
};

}  // namespace scap::kernel::testing
