// Overload- and failure-robustness of the sharded datapath (DESIGN.md §13):
// the worker-stall watchdog (fatal and degrade policies), the PPL-mirroring
// watermark admission ladder, bounded stop(), and apply-time FDIR counting
// in queue mode. Everything here drives KernelShards directly with explicit
// shard targeting and a manual tick grid, so every verdict is deterministic.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "base/mutex.hpp"
#include "faultinject/faultinject.hpp"
#include "kernel/shard.hpp"
#include "nic/nic.hpp"
#include "packet/craft.hpp"

namespace scap::kernel {
namespace {

using faultinject::FaultInjector;
using faultinject::FaultPoint;
using faultinject::FaultScope;
using faultinject::InjectionPlan;

Packet packet_for(std::uint16_t src_port, Timestamp ts,
                  std::uint32_t dst_ip = 0x0a000001) {
  TcpSegmentSpec spec;
  spec.tuple = {0xc0a80001, dst_ip, src_port, 80, kProtoTcp};
  return make_tcp_packet(spec, ts);
}

/// Injection plan that parks exactly one shard's worker at thread entry
/// (kWorkerStall is consulted once per worker, keyed by shard).
InjectionPlan park_shard(std::uint64_t shard) {
  InjectionPlan plan;
  plan.seed = 1;
  plan.at(FaultPoint::kWorkerStall).every_n = 1;
  plan.at(FaultPoint::kWorkerStall).only_key =
      static_cast<std::int64_t>(shard);
  return plan;
}

// --- watchdog: degrade policy ------------------------------------------------

// One of four workers is parked. The watchdog must declare the stall within
// its simulated-time deadline, degrade only that shard (its traffic lands in
// ring_stall_shed_*), keep the other three processing, hold every
// conservation law at every maintenance tick, and close the in-flight
// accounting exactly at stop().
TEST(ShardWatchdog, DegradeIsolatesStalledShardOthersKeepProcessing) {
  KernelConfig cfg;
  cfg.memory_size = 8 << 20;

  KernelShards::Options opts;
  opts.ring_capacity = 64;
  opts.stall_timeout = Duration::from_msec(5);
  opts.stall_policy = StallPolicy::kDegrade;
  opts.stall_spin_limit = 512;  // the parked worker never progresses anyway

  KernelShards shards(cfg, /*num_shards=*/4, opts);
  FaultInjector injector(park_shard(1));
  // Installed before start(): workers consult kWorkerStall at thread entry.
  FaultScope scope(injector);
  base::SerialGuard prod(shards.producer());
  shards.start({});

  const Timestamp t0 = Timestamp(1'000'000'000);
  shards.tick_all(t0);  // seeds every shard's heartbeat baseline
  EXPECT_EQ(shards.check_invariants(), "");

  // Round 1: 40 packets per shard, all inside the watchdog deadline.
  Timestamp ts = t0;
  for (int i = 0; i < 40; ++i) {
    ts = t0 + Duration::from_usec(10 * (i + 1));
    for (int shard = 0; shard < 4; ++shard) {
      shards.submit_to(shard, packet_for(
          static_cast<std::uint16_t>(2000 + i), ts,
          0x0a000001 + static_cast<std::uint32_t>(shard)));
    }
  }

  // Deadline not yet reached: no stall may be declared.
  shards.tick_all(t0 + Duration::from_msec(2));
  EXPECT_EQ(shards.check_invariants(), "");
  EXPECT_EQ(shards.stats().worker_stalls, 0u);
  EXPECT_FALSE(shards.degraded(1));

  // Past the deadline with a flat heartbeat and outstanding items: the
  // bounded grace spin cannot observe progress (the worker is parked), so
  // shard 1 must be degraded — and only shard 1.
  shards.tick_all(t0 + Duration::from_msec(8));
  EXPECT_EQ(shards.check_invariants(), "");
  EXPECT_TRUE(shards.degraded(1));
  EXPECT_FALSE(shards.degraded(0));
  EXPECT_FALSE(shards.degraded(2));
  EXPECT_FALSE(shards.degraded(3));
  EXPECT_EQ(shards.stats().worker_stalls, 1u);

  // Round 2: the degraded shard's traffic is shed (counted as stall shed);
  // the other three shards keep capturing.
  for (int i = 0; i < 40; ++i) {
    ts = t0 + Duration::from_msec(8) + Duration::from_usec(10 * (i + 1));
    for (int shard = 0; shard < 4; ++shard) {
      shards.submit_to(shard, packet_for(
          static_cast<std::uint16_t>(3000 + i), ts,
          0x0a000001 + static_cast<std::uint32_t>(shard)));
    }
  }
  shards.tick_all(t0 + Duration::from_msec(12));
  EXPECT_EQ(shards.check_invariants(), "");
  shards.flush();  // live shards drain; the degraded one is skipped

  const KernelStats mid = shards.stats();
  EXPECT_EQ(mid.ring_stall_shed_pkts, 40u);
  EXPECT_EQ(mid.ring_shed_pkts, 40u);  // every shed here is a stall shed
  EXPECT_GT(mid.ring_stall_shed_bytes, 0u);
  for (int shard : {0, 2, 3}) {
    EXPECT_EQ(shards.shard_stats(shard).pkts_seen, 80u) << "shard " << shard;
  }
  // The parked worker consumed nothing: its kernel saw no packets yet.
  EXPECT_EQ(shards.shard_stats(1).pkts_seen, 0u);

  // Bounded stop() despite the dead worker: the join is interruptible and
  // the degraded shard's ring residue (round 1) is drained inline, so the
  // final accounting includes those 40 packets.
  shards.stop(ts);
  EXPECT_EQ(shards.check_invariants(), "");
  const KernelStats fin = shards.stats();
  EXPECT_EQ(fin.pkts_seen, 3 * 80u + 40u);
  EXPECT_EQ(fin.ring_stall_shed_pkts, 40u);
  EXPECT_EQ(fin.worker_stalls, 1u);
}

// --- watchdog: fatal policy --------------------------------------------------

#if defined(SCAP_ENABLE_INVARIANTS)
// Under StallPolicy::kFatal the watchdog must abort within the deadline
// (simulated deadline + bounded real-time grace) instead of hanging the
// producer. Death test: the whole scenario runs in the forked child.
TEST(ShardWatchdogDeathTest, FatalPolicyAbortsWithinDeadline) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        KernelConfig cfg;
        cfg.memory_size = 8 << 20;
        KernelShards::Options opts;
        opts.ring_capacity = 64;
        opts.stall_timeout = Duration::from_msec(5);
        opts.stall_policy = StallPolicy::kFatal;
        opts.stall_spin_limit = 512;
        KernelShards shards(cfg, 4, opts);
        FaultInjector injector(park_shard(1));
        FaultScope scope(injector);
        base::SerialGuard prod(shards.producer());
        shards.start({});
        const Timestamp t0 = Timestamp(1'000'000'000);
        shards.tick_all(t0);
        for (int i = 0; i < 8; ++i) {
          for (int shard = 0; shard < 4; ++shard) {
            shards.submit_to(
                shard, packet_for(static_cast<std::uint16_t>(2000 + i),
                                  t0 + Duration::from_usec(10 * (i + 1))));
          }
        }
        shards.tick_all(t0 + Duration::from_msec(8));
      },
      "stalled past the watchdog deadline");
}
#endif  // SCAP_ENABLE_INVARIANTS

// --- watermark admission ladder ----------------------------------------------

// Full-ring shed ordering: with the ladder over [low, high) mirroring the
// PPL watermarks, lower-priority packets must be shed strictly before
// higher-priority ones, hysteresis must shed everything once high is
// crossed, and a drain below low must re-open admission. No workers run:
// occupancy is then exact and every verdict is a pure function of the push
// sequence.
TEST(ShardAdmission, LadderShedsLowestPriorityFirstWithHysteresis) {
  KernelConfig cfg;
  cfg.memory_size = 8 << 20;
  cfg.ppl.priority_levels = 4;
  // Priority by client port: 1000+p -> PPL priority p (first match wins).
  for (int p = 0; p < 4; ++p) {
    PriorityClass cls;
    cls.filter = BpfProgram::compile("src port " + std::to_string(1000 + p));
    cls.priority = p;
    cfg.priority_classes.push_back(cls);
  }

  KernelShards::Options opts;
  opts.ring_capacity = 16;
  opts.ring_high_watermark = 8;
  opts.ring_low_watermark = 4;
  KernelShards shards(cfg, /*num_shards=*/1, opts);
  base::SerialGuard prod(shards.producer());

  const Timestamp t0 = Timestamp(1'000'000'000);
  std::int64_t n = 0;
  const auto push = [&](int prio) {
    shards.submit_to(0, packet_for(static_cast<std::uint16_t>(1000 + prio),
                                   t0 + Duration::from_usec(++n)));
  };
  const auto shed_count = [&] { return shards.stats().ring_shed_pkts; };

  // Ladder thresholds: wm(p) = low + (p+1)*(high-low)/levels = 5,6,7,8.
  // Below low (occ < 4) everything is admitted regardless of priority.
  for (int i = 0; i < 4; ++i) push(3);
  EXPECT_EQ(shed_count(), 0u);
  push(3);  // occ=4 < wm(3)=8: admitted
  EXPECT_EQ(shed_count(), 0u);
  push(0);  // occ=5 >= wm(0)=5: the lowest priority is shed first
  EXPECT_EQ(shed_count(), 1u);
  push(1);  // occ=5 < wm(1)=6: admitted
  EXPECT_EQ(shed_count(), 1u);
  push(1);  // occ=6 >= wm(1): shed
  EXPECT_EQ(shed_count(), 2u);
  push(2);  // occ=6 < wm(2)=7: admitted
  EXPECT_EQ(shed_count(), 2u);
  push(2);  // occ=7 >= wm(2): shed
  EXPECT_EQ(shed_count(), 3u);
  push(3);  // occ=7 < wm(3)=8: the highest priority survives to high itself
  EXPECT_EQ(shed_count(), 3u);
  push(3);  // occ=8 >= high: hysteresis arms, everything sheds
  EXPECT_EQ(shed_count(), 4u);
  push(3);  // still shedding (occ stuck above low)
  EXPECT_EQ(shed_count(), 5u);

  // Shed accounting is exact: all ten frames are the same size.
  const KernelStats mid = shards.stats();
  const std::uint64_t frame = mid.ring_shed_bytes / mid.ring_shed_pkts;
  EXPECT_EQ(mid.ring_shed_bytes, 5u * frame);
  EXPECT_EQ(mid.ring_stall_shed_pkts, 0u);  // no stall was involved

  // Drain to empty (inline: no workers), dropping occupancy through low:
  // hysteresis clears and the lowest priority is admitted again.
  shards.flush();
  push(0);
  EXPECT_EQ(shed_count(), 5u);

  shards.flush();
  EXPECT_EQ(shards.check_invariants(), "");
  shards.stop(t0 + Duration::from_msec(1));
  EXPECT_EQ(shards.check_invariants(), "");
  const KernelStats fin = shards.stats();
  EXPECT_EQ(fin.pkts_seen, 9u);  // 14 pushes, 5 shed
  EXPECT_EQ(fin.ring_shed_pkts, 5u);
}

// --- apply-time FDIR accounting (queue mode) ---------------------------------

// fdir_installs must count hardware acceptance, not enqueue: an install the
// NIC rejects lands in fdir_install_failures, removals (explicit and
// expiry) count filters actually removed, and the removal-conservation law
// (fdir_removals <= 2*(installs + reinstalls)) holds with exact equality in
// the all-removed case.
TEST(ShardFdir, AppliedCountsMatchHardwareOutcomes) {
  KernelConfig cfg;
  cfg.memory_size = 8 << 20;
  cfg.use_fdir = true;  // creates the FDIR command queue

  const Timestamp t0 = Timestamp(1'000'000'000);
  const FiveTuple a{0xc0a80001, 0x0a000001, 1111, 80, kProtoTcp};
  const FiveTuple b{0xc0a80001, 0x0a000001, 2222, 80, kProtoTcp};

  {
    KernelShards shards(cfg, 1);
    base::SerialGuard prod(shards.producer());
    ASSERT_NE(shards.fdir_queue(), nullptr);

    FdirCommand install;
    install.kind = FdirCommand::Kind::kInstallCutoff;
    install.tuple = a;
    install.expires = t0 + Duration::from_sec(10);
    ASSERT_TRUE(shards.fdir_queue()->try_push(install));

    FdirCommand reinstall = install;
    reinstall.tuple = b;
    reinstall.reinstall = true;
    ASSERT_TRUE(shards.fdir_queue()->try_push(reinstall));

    nic::Nic nic(1);
    shards.service_fdir(nic, t0);
    KernelStats s = shards.stats();
    EXPECT_EQ(s.fdir_installs, 1u);
    EXPECT_EQ(s.fdir_reinstalls, 1u);
    EXPECT_EQ(s.fdir_removals, 0u);
    EXPECT_EQ(s.fdir_install_failures, 0u);

    // Explicit removal takes out both flag-variant filters for the tuple.
    FdirCommand remove;
    remove.kind = FdirCommand::Kind::kRemove;
    remove.tuple = a;
    remove.also_reversed = true;
    ASSERT_TRUE(shards.fdir_queue()->try_push(remove));
    shards.service_fdir(nic, t0 + Duration::from_sec(1));
    EXPECT_EQ(shards.stats().fdir_removals, 2u);

    // Hardware expiry is serviced here too; tuple b's pair times out.
    shards.service_fdir(nic, t0 + Duration::from_sec(20));
    s = shards.stats();
    EXPECT_EQ(s.fdir_removals, 4u);
    // Law 7 at exact equality: 4 == 2 * (1 install + 1 reinstall).
    EXPECT_EQ(s.check_conservation(), "");
    EXPECT_EQ(shards.check_invariants(), "");
    shards.stop(t0 + Duration::from_sec(21));
  }

  // Rejection path: a zero-capacity FDIR table refuses both filters, so
  // the command counts one failure and no install.
  {
    KernelShards shards(cfg, 1);
    base::SerialGuard prod(shards.producer());
    FdirCommand install;
    install.kind = FdirCommand::Kind::kInstallCutoff;
    install.tuple = a;
    install.expires = t0 + Duration::from_sec(10);
    ASSERT_TRUE(shards.fdir_queue()->try_push(install));

    nic::Nic rejecting(1, symmetric_rss_key(), /*fdir_capacity=*/0);
    shards.service_fdir(rejecting, t0);
    const KernelStats s = shards.stats();
    EXPECT_EQ(s.fdir_installs, 0u);
    EXPECT_EQ(s.fdir_install_failures, 1u);
    EXPECT_EQ(s.check_conservation(), "");
    shards.stop(t0 + Duration::from_sec(1));
  }
}

}  // namespace
}  // namespace scap::kernel
