// Coverage for the remaining Capture surface: flush timeouts, UDP streams,
// per-stream parameter changes from callbacks, overlap delivery, strict
// policies, and a threaded-mode stress run.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "flowgen/workload.hpp"
#include "scap/capture.hpp"
#include "tests/kernel/test_helpers.hpp"

namespace scap {
namespace {

using kernel::Direction;
using kernel::ReassemblyMode;
using kernel::testing::SessionBuilder;
using kernel::testing::bytes_of;
using kernel::testing::client_tuple;

TEST(CaptureFeatures, FlushTimeoutDeliversPartialChunks) {
  Capture cap("sim0", 1 << 20, ReassemblyMode::kTcpFast, false);
  cap.set_parameter(Parameter::kChunkSize, 1 << 16);  // never fills
  cap.set_parameter(Parameter::kFlushTimeoutMs, 50);
  std::vector<std::string> chunks;
  cap.dispatch_data([&](StreamView& sd) {
    chunks.emplace_back(sd.data().begin(), sd.data().end());
  });
  cap.start();
  kernel::testing::CaptureInvariantGuard guard(cap);
  SessionBuilder s;
  cap.inject(s.syn(Timestamp(0)));
  cap.inject(s.data("early ", Timestamp::from_usec(1000)));
  // The next packet arrives 100ms later; its arrival triggers the
  // stream's flush timeout for the buffered bytes.
  cap.inject(s.data("late", Timestamp::from_usec(101000)));
  EXPECT_GE(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], "early ");
  cap.stop();
  std::string all;
  for (const auto& c : chunks) all += c;
  EXPECT_EQ(all, "early late");
}

TEST(CaptureFeatures, UdpStreamsThroughApi) {
  Capture cap("sim0", 1 << 20, ReassemblyMode::kTcpFast, false);
  std::string text;
  int terminated = 0;
  cap.dispatch_data([&](StreamView& sd) {
    text.append(sd.data().begin(), sd.data().end());
  });
  cap.dispatch_termination([&](StreamView& sd) {
    ++terminated;
    EXPECT_EQ(sd.status(), kernel::StreamStatus::kClosedTimeout);
    EXPECT_EQ(sd.tuple().protocol, kProtoUdp);
  });
  cap.start();
  kernel::testing::CaptureInvariantGuard guard(cap);
  FiveTuple t{0x0a000001, 0x0a000002, 5353, 53, kProtoUdp};
  const std::string q1 = "q1|", q2 = "q2|";
  cap.inject(make_udp_packet(t, bytes_of(q1), Timestamp(0)));
  cap.inject(make_udp_packet(t, bytes_of(q2), Timestamp(1)));
  cap.stop();
  EXPECT_EQ(text, "q1|q2|");
  EXPECT_EQ(terminated, 1);
}

TEST(CaptureFeatures, OverlapDeliveredToCallbacks) {
  Capture cap("sim0", 1 << 20, ReassemblyMode::kTcpFast, false);
  cap.set_parameter(Parameter::kChunkSize, 8);
  cap.set_parameter(Parameter::kOverlapSize, 3);
  std::vector<std::pair<std::string, std::uint32_t>> chunks;
  cap.dispatch_data([&](StreamView& sd) {
    chunks.emplace_back(std::string(sd.data().begin(), sd.data().end()),
                        sd.overlap_len());
  });
  cap.start();
  kernel::testing::CaptureInvariantGuard guard(cap);
  SessionBuilder s;
  cap.inject(s.syn(Timestamp(0)));
  cap.inject(s.data("abcdefgh", Timestamp(0)));  // chunk 1, no overlap
  cap.inject(s.data("ijklm", Timestamp(0)));     // chunk 2 = fgh + ijklm
  cap.stop();
  ASSERT_GE(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].first, "abcdefgh");
  EXPECT_EQ(chunks[0].second, 0u);
  EXPECT_EQ(chunks[1].first, "fghijklm");
  EXPECT_EQ(chunks[1].second, 3u);
}

TEST(CaptureFeatures, OverlapPolicySelectableAtCaptureLevel) {
  for (auto policy :
       {kernel::OverlapPolicy::kFirst, kernel::OverlapPolicy::kLast}) {
    Capture cap("sim0", 1 << 20, ReassemblyMode::kTcpStrict, false);
    cap.set_overlap_policy(policy);
    std::string text;
    cap.dispatch_data([&](StreamView& sd) {
      text.append(sd.data().begin(), sd.data().end());
    });
    cap.start();
    SessionBuilder s;
    Timestamp t(0);
    cap.inject(s.syn(t));
    const std::uint32_t base = s.client_seq();
    cap.inject(s.data_at(base + 4, "EVIL", t));
    cap.inject(s.data_at(base + 4, "GOOD", t));
    cap.inject(s.data_at(base, "head", t));
    cap.stop();
    EXPECT_EQ(text, policy == kernel::OverlapPolicy::kFirst ? "headEVIL"
                                                            : "headGOOD");
  }
}

TEST(CaptureFeatures, PerStreamChunkSizeFromCallback) {
  Capture cap("sim0", 1 << 20, ReassemblyMode::kTcpFast, false);
  cap.set_parameter(Parameter::kChunkSize, 1 << 16);
  std::vector<std::size_t> sizes;
  cap.dispatch_creation([&](StreamView& sd) {
    sd.set_parameter(Parameter::kChunkSize, 4);  // tiny chunks for this one
  });
  cap.dispatch_data([&](StreamView& sd) { sizes.push_back(sd.data_len()); });
  cap.start();
  kernel::testing::CaptureInvariantGuard guard(cap);
  SessionBuilder s;
  cap.inject(s.syn(Timestamp(0)));
  cap.inject(s.data("0123456789ab", Timestamp(0)));
  cap.stop();
  ASSERT_GE(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 4u);
  EXPECT_EQ(sizes[1], 4u);
  EXPECT_EQ(sizes[2], 4u);
}

TEST(CaptureFeatures, ErrorBitsSurfaceInCallbacks) {
  Capture cap("sim0", 1 << 20, ReassemblyMode::kTcpFast, false);
  std::uint32_t seen_errors = 0;
  cap.dispatch_data([&](StreamView& sd) { seen_errors |= sd.chunk_errors(); });
  cap.start();
  kernel::testing::CaptureInvariantGuard guard(cap);
  SessionBuilder s;
  Timestamp t(0);
  cap.inject(s.syn(t));
  cap.inject(s.data("abc", t));
  const std::uint32_t base = s.client_seq();
  cap.inject(s.data_at(base + 100, "after a hole", t));  // lost segment
  cap.stop();
  EXPECT_NE(seen_errors & kernel::kErrHole, 0u);
}

TEST(CaptureFeatures, ThreadedStressDeliversAllBytes) {
  Capture cap("sim0", 64 << 20, ReassemblyMode::kTcpFast, false);
  cap.set_worker_threads(4);
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<int> closed{0};
  cap.dispatch_data(
      [&](StreamView& sd) { bytes += sd.data_len(); });
  cap.dispatch_termination([&](StreamView&) { ++closed; });
  cap.start();
  kernel::testing::CaptureInvariantGuard guard(cap);

  flowgen::WorkloadConfig cfg;
  cfg.flows = 150;
  cfg.seed = 77;
  const flowgen::Trace trace = flowgen::build_trace(cfg);
  for (const auto& pkt : trace.packets) cap.inject(pkt);
  cap.stop();

  EXPECT_EQ(bytes.load(), trace.total_payload_bytes);
  EXPECT_GT(closed.load(), 0);
  // Workers are joined after stop(): every shard's allocator must balance.
  kernel::KernelShards& shards = *cap.shards();
  for (int i = 0; i < shards.num_shards(); ++i) {
    base::SerialGuard serial(shards.kernel(i).serial());
    EXPECT_EQ(shards.kernel(i).allocator().used(), 0u);
  }
}

}  // namespace
}  // namespace scap
