// Multiple applications sharing one capture (paper §5.6): reassembly runs
// once in the kernel; each application sees only its filtered subset.
#include <gtest/gtest.h>

#include <string>

#include "scap/capture.hpp"
#include "tests/kernel/test_helpers.hpp"

namespace scap {
namespace {

using kernel::ReassemblyMode;
using kernel::testing::SessionBuilder;
using kernel::testing::client_tuple;

struct AppLog {
  int created = 0;
  int data = 0;
  int closed = 0;
  std::string text;
};

Capture::AppHandlers handlers_for(AppLog& log) {
  Capture::AppHandlers h;
  h.on_created = [&log](StreamView&) { ++log.created; };
  h.on_data = [&log](StreamView& sd) {
    ++log.data;
    log.text.append(sd.data().begin(), sd.data().end());
  };
  h.on_terminated = [&log](StreamView&) { ++log.closed; };
  return h;
}

TEST(MultiApp, EachApplicationSeesItsFilteredSubset) {
  Capture cap("sim0", 1 << 20, ReassemblyMode::kTcpFast, false);
  AppLog web, dns_or_mail;
  cap.add_application("port 80", handlers_for(web));
  cap.add_application("port 25 or port 53", handlers_for(dns_or_mail));
  cap.start();
  kernel::testing::CaptureInvariantGuard guard(cap);

  Timestamp t(0);
  SessionBuilder http(client_tuple(40000, 80));
  SessionBuilder smtp(client_tuple(40001, 25));
  SessionBuilder other(client_tuple(40002, 9999));
  for (auto* s : {&http, &smtp, &other}) {
    cap.inject(s->syn(t));
  }
  cap.inject(http.data("http payload", t));
  cap.inject(smtp.data("mail payload", t));
  cap.inject(other.data("nobody wants this", t));
  cap.stop();

  EXPECT_EQ(web.text, "http payload");
  EXPECT_EQ(dns_or_mail.text, "mail payload");
  EXPECT_EQ(web.created, 1);
  EXPECT_EQ(dns_or_mail.created, 1);
}

TEST(MultiApp, UnwantedStreamsDiscardedInKernel) {
  Capture cap("sim0", 1 << 20, ReassemblyMode::kTcpFast, false);
  AppLog web;
  cap.add_application("port 80", handlers_for(web));
  cap.start();
  kernel::testing::CaptureInvariantGuard guard(cap);
  Timestamp t(0);
  SessionBuilder other(client_tuple(40002, 9999));
  cap.inject(other.syn(t));
  cap.inject(other.data("unwanted", t));
  cap.stop();
  // Never tracked, never delivered — early discard like a BPF miss.
  EXPECT_EQ(cap.stats().kernel.streams_created, 0u);
  EXPECT_GE(cap.stats().kernel.pkts_filtered, 2u);
}

TEST(MultiApp, OverlappingFiltersShareOneReassembly) {
  Capture cap("sim0", 1 << 20, ReassemblyMode::kTcpFast, false);
  AppLog all_tcp, web;
  cap.add_application("tcp", handlers_for(all_tcp));
  cap.add_application("port 80", handlers_for(web));
  cap.start();
  kernel::testing::CaptureInvariantGuard guard(cap);
  Timestamp t(0);
  SessionBuilder http(client_tuple(40000, 80));
  cap.inject(http.syn(t));
  cap.inject(http.data("shared chunk", t));
  cap.inject(http.fin(t));
  cap.stop();

  // Both applications saw the same bytes; the kernel reassembled once.
  EXPECT_EQ(all_tcp.text, "shared chunk");
  EXPECT_EQ(web.text, "shared chunk");
  EXPECT_EQ(cap.stats().kernel.pkts_stored, 1u);
  EXPECT_GE(web.closed, 1);
  EXPECT_GE(all_tcp.closed, 1);
}

TEST(MultiApp, AddAfterStartThrows) {
  Capture cap("sim0", 1 << 20, ReassemblyMode::kTcpFast, false);
  cap.start();
  kernel::testing::CaptureInvariantGuard guard(cap);
  EXPECT_THROW(cap.add_application("tcp", {}), std::logic_error);
}

}  // namespace
}  // namespace scap
