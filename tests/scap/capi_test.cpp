// Exercises the C API exactly as the paper's use cases (§3.3) do.
#include "scap/scap.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "packet/pcap.hpp"
#include "scap/capture.hpp"
#include "tests/kernel/test_helpers.hpp"

namespace {

using scap::Packet;
using scap::Timestamp;
using scap::kernel::testing::SessionBuilder;
using scap::kernel::testing::client_tuple;

// Globals for the C-style callbacks.
struct Collected {
  std::vector<std::string> chunks;
  std::vector<std::uint64_t> closed_bytes;
  int creations = 0;
  int packets = 0;
};
Collected* g_collected = nullptr;

void on_data(stream_t* sd) {
  g_collected->chunks.emplace_back(
      reinterpret_cast<const char*>(scap_stream_data(sd)),
      scap_stream_data_len(sd));
}

void on_close(stream_t* sd) {
  g_collected->closed_bytes.push_back(sd->stats().bytes);
}

void on_create(stream_t*) { ++g_collected->creations; }

void on_data_packets(stream_t* sd) {
  scap_pkthdr hdr;
  while (scap_next_stream_packet(sd, &hdr) != nullptr) {
    ++g_collected->packets;
  }
}

class CApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    collected_ = Collected{};
    g_collected = &collected_;
  }
  void TearDown() override { g_collected = nullptr; }

  /// Asserts the kernel conservation suite, then closes the handle; used
  /// instead of bare scap_close so every C-API scenario proves the
  /// invariants at teardown.
  static void close_checked(scap_t* sc) {
    if (sc != nullptr && sc->has_kernel()) {
      scap::kernel::testing::expect_invariants_hold(sc->kernel());
    }
    scap_close(sc);
  }

  Collected collected_;
};

TEST_F(CApiTest, PaperUseCaseFlowStatsExport) {
  // §3.3.1 nearly verbatim.
  scap_t* sc = scap_create("sim0", SCAP_DEFAULT, SCAP_TCP_FAST, 0);
  ASSERT_NE(sc, nullptr);
  ASSERT_EQ(scap_set_cutoff(sc, 0), 0);
  ASSERT_EQ(scap_dispatch_termination(sc, on_close), 0);
  ASSERT_EQ(scap_start_capture(sc), 0);

  SessionBuilder s;
  Timestamp t(0);
  scap_inject(sc, s.syn(t));
  scap_inject(sc, s.data("0123456789", t));
  scap_inject(sc, s.fin(t));
  scap_flush(sc);

  ASSERT_GE(collected_.closed_bytes.size(), 1u);
  EXPECT_EQ(collected_.closed_bytes[0], 10u);

  scap_stats_t stats{};
  ASSERT_EQ(scap_get_stats(sc, &stats), 0);
  EXPECT_EQ(stats.pkts_seen, 3u);
  EXPECT_GE(stats.streams_created, 1u);
  close_checked(sc);
}

TEST_F(CApiTest, PaperUseCaseStreamProcessing) {
  // §3.3.2 shape: dispatch data, receive reassembled chunks.
  scap_t* sc = scap_create("sim0", SCAP_DEFAULT, SCAP_TCP_FAST, 0);
  ASSERT_NE(sc, nullptr);
  ASSERT_EQ(scap_dispatch_data(sc, on_data), 0);
  ASSERT_EQ(scap_dispatch_creation(sc, on_create), 0);
  ASSERT_EQ(scap_start_capture(sc), 0);

  SessionBuilder s;
  Timestamp t(0);
  scap_inject(sc, s.syn(t));
  scap_inject(sc, s.data("GET /index.html", t));
  scap_inject(sc, s.fin(t));
  scap_flush(sc);

  ASSERT_EQ(collected_.chunks.size(), 1u);
  EXPECT_EQ(collected_.chunks[0], "GET /index.html");
  EXPECT_EQ(collected_.creations, 1);
  close_checked(sc);
}

TEST_F(CApiTest, FileDeviceReplaysToCompletion) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "scap_capi_replay.pcap")
          .string();
  {
    scap::PcapWriter w(path);
    SessionBuilder s;
    w.write(s.syn(Timestamp(0)));
    w.write(s.data("file replay data", Timestamp(1000)));
    w.write(s.fin(Timestamp(2000)));
  }
  scap_t* sc = scap_create(("file:" + path).c_str(), SCAP_DEFAULT,
                           SCAP_TCP_FAST, 0);
  ASSERT_NE(sc, nullptr);
  scap_dispatch_data(sc, on_data);
  ASSERT_EQ(scap_start_capture(sc), 0);
  ASSERT_EQ(collected_.chunks.size(), 1u);
  EXPECT_EQ(collected_.chunks[0], "file replay data");
  close_checked(sc);
  std::filesystem::remove(path);
}

TEST_F(CApiTest, PacketDeliveryApi) {
  scap_t* sc = scap_create("sim0", SCAP_DEFAULT, SCAP_TCP_FAST, 1);
  scap_dispatch_data(sc, on_data_packets);
  scap_start_capture(sc);
  SessionBuilder s;
  Timestamp t(0);
  scap_inject(sc, s.syn(t));
  scap_inject(sc, s.data("one", t));
  scap_inject(sc, s.data("two", t));
  scap_inject(sc, s.data("three", t));
  scap_inject(sc, s.fin(t));
  scap_flush(sc);
  EXPECT_EQ(collected_.packets, 3);
  close_checked(sc);
}

TEST_F(CApiTest, ParameterAndFilterValidation) {
  scap_t* sc = scap_create("sim0", SCAP_DEFAULT, SCAP_TCP_FAST, 0);
  EXPECT_EQ(scap_set_filter(sc, "tcp and port 80"), 0);
  EXPECT_EQ(scap_set_filter(sc, "not a filter !!!"), -1);
  EXPECT_EQ(scap_set_parameter(sc, SCAP_PARAM_CHUNK_SIZE, 4096), 0);
  EXPECT_EQ(scap_set_worker_threads(sc, -1), -1);
  EXPECT_EQ(scap_set_worker_threads(sc, 4), 0);
  EXPECT_EQ(scap_set_parameter(sc, SCAP_PARAM_WORKERS, 2), 0);
  EXPECT_EQ(scap_set_parameter(sc, SCAP_PARAM_WORKERS, -1), -1);
  EXPECT_EQ(scap_set_parameter(sc, SCAP_PARAM_RING_CAPACITY, 1024), 0);
  EXPECT_EQ(scap_set_parameter(sc, SCAP_PARAM_RING_CAPACITY, 0), -1);
  EXPECT_EQ(scap_set_parameter(sc, SCAP_PARAM_WORKERS, 0), 0);
  EXPECT_EQ(scap_add_cutoff_direction(sc, 100, SCAP_DIR_ORIG), 0);
  EXPECT_EQ(scap_add_cutoff_direction(sc, 100, 7), -1);
  EXPECT_EQ(scap_add_cutoff_class(sc, 100, "port 80"), 0);
  close_checked(sc);
}

TEST_F(CApiTest, NullSafety) {
  EXPECT_EQ(scap_set_filter(nullptr, "tcp"), -1);
  EXPECT_EQ(scap_set_cutoff(nullptr, 0), -1);
  EXPECT_EQ(scap_get_stats(nullptr, nullptr), -1);
  EXPECT_EQ(scap_stream_data(nullptr), nullptr);
  EXPECT_EQ(scap_stream_data_len(nullptr), 0u);
  scap_close(nullptr);  // must not crash
}

TEST_F(CApiTest, MissingFileDeviceFailsStart) {
  scap_t* sc = scap_create("file:/does/not/exist.pcap", SCAP_DEFAULT,
                           SCAP_TCP_FAST, 0);
  ASSERT_NE(sc, nullptr);
  EXPECT_EQ(scap_start_capture(sc), -1);
  close_checked(sc);
}

}  // namespace
