// Shard-aggregation determinism and conservation (DESIGN.md §12).
//
// The sharded datapath must be *accounting-transparent*: because symmetric
// RSS gives every flow to exactly one shard and maintenance ticks ride the
// ingest rings in-band, the shard-summed KernelStats at any maintenance
// tick is a pure function of the input trace — independent of how many
// workers processed it. The first suite asserts that literally: seeded
// adversarial workloads replayed at 1, 2 and 4 workers produce bit-for-bit
// identical aggregated snapshots at every tick (pool-geometry fields are
// normalized to zero first; slab growth is allocation-pattern dependent).
//
// The second suite gives up bit-for-bit (tiny memory, tiny stream budget,
// FDIR commands draining through the MPSC queue) and instead asserts the
// conservation laws on the shard aggregate at every tick for 1-8 workers —
// the property chaos_run --check-invariants relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "base/mutex.hpp"
#include "faultinject/adversary.hpp"
#include "kernel/shard.hpp"
#include "kernel/stats_determinism.hpp"
#include "nic/nic.hpp"

namespace scap {
namespace {

/// Zero every field the determinism registry (stats_determinism.inc,
/// DESIGN.md §15) classifies as shard-geometry (slab growth is an
/// allocation pattern, not part of the aggregate contract) or
/// scheduling-dependent (occupancy peaks measure consumer lag). Deriving
/// the set from the registry means a new counter must be classified there
/// before this suite will accept it.
kernel::KernelStats normalized(kernel::KernelStats s) {
  using kernel::StatDeterminism;
#define SCAP_STATS_FIELD(field, determinism)          \
  if constexpr (StatDeterminism::determinism !=       \
                StatDeterminism::kDeterministic) {    \
    s.field = 0;                                      \
  }
#define SCAP_STATS_ARRAY(field, determinism)            \
  if constexpr (StatDeterminism::determinism !=         \
                StatDeterminism::kDeterministic) {      \
    std::fill(std::begin(s.field), std::end(s.field), 0); \
  }
#include "kernel/stats_determinism.inc"
  return s;
}

std::vector<Packet> adversary_packets(std::uint64_t seed, std::uint64_t n) {
  faultinject::AdversaryConfig cfg;
  cfg.seed = seed;
  cfg.packets = n;
  return faultinject::AdversaryGen(cfg).generate();
}

/// Replay `pkts` through a KernelShards with `workers` shards, pushing
/// in-band maintenance ticks on the config's expiry_interval grid
/// (anchored at the first packet, markers pushed before any packet at or
/// past the boundary — the same discipline Capture uses). After every
/// tick the rings are flushed and `on_tick` runs, then the normalized
/// aggregate is snapshotted; two more snapshots follow the final flush
/// and stop(). When `with_fdir_nic` is set, queued FDIR commands drain
/// into a producer-owned NIC at each tick.
template <typename OnTick>
std::vector<kernel::KernelStats> replay_sharded(
    const std::vector<Packet>& pkts, const kernel::KernelConfig& cfg,
    int workers, bool with_fdir_nic, OnTick on_tick) {
  kernel::KernelShards shards(cfg, workers);
  base::SerialGuard prod(shards.producer());
  std::optional<nic::Nic> nic;
  if (with_fdir_nic) nic.emplace(workers);
  shards.start({});

  std::vector<kernel::KernelStats> snaps;
  const Duration tick = cfg.expiry_interval;
  bool anchored = false;
  Timestamp next{};
  Timestamp last{};
  for (const Packet& p : pkts) {
    if (!anchored) {
      next = p.timestamp() + tick;
      anchored = true;
    }
    while (p.timestamp() >= next) {
      shards.tick_all(next);
      shards.flush();
      if (nic.has_value()) shards.service_fdir(*nic, next);
      on_tick(shards);
      snaps.push_back(normalized(shards.stats()));
      next = next + tick;
    }
    shards.submit(p);
    last = p.timestamp();
  }
  shards.flush();
  on_tick(shards);
  snaps.push_back(normalized(shards.stats()));
  shards.stop(last);
  snaps.push_back(normalized(shards.stats()));
  return snaps;
}

// --- bit-for-bit shard-count independence ------------------------------------

// Ample memory, unlimited streams, no defrag, no FDIR, no flush timeouts:
// every nondeterministic resource edge is out of the picture, so the
// aggregate must replay exactly.
kernel::KernelConfig exact_config() {
  kernel::KernelConfig cfg;
  cfg.memory_size = 256ull << 20;
  cfg.max_streams = 0;
  cfg.defaults.cutoff_bytes = 4096;  // deterministic per-flow discard path
  // 6000 adversary packets span ~12ms of virtual time; a 2ms grid with a
  // 4ms idle timeout makes streams expire *mid-replay*, so the snapshots
  // actually exercise tick-vs-packet ordering, not just the final total.
  cfg.expiry_interval = Duration::from_msec(2);
  cfg.defaults.inactivity_timeout = Duration::from_msec(4);
  return cfg;
}

class ShardConservationExact
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardConservationExact, AggregateMatchesSingleWorkerAtEveryTick) {
  const std::vector<Packet> pkts = adversary_packets(GetParam(), 6000);
  const kernel::KernelConfig cfg = exact_config();
  const auto nop = [](kernel::KernelShards&) {};

  const std::vector<kernel::KernelStats> ref =
      replay_sharded(pkts, cfg, /*workers=*/1, /*with_fdir_nic=*/false, nop);
  ASSERT_GE(ref.size(), 4u) << "tick grid produced too few snapshots";
  EXPECT_GT(ref.back().streams_terminated, 0u);

  for (int workers : {2, 4}) {
    const std::vector<kernel::KernelStats> got = replay_sharded(
        pkts, cfg, workers, /*with_fdir_nic=*/false, nop);
    ASSERT_EQ(got.size(), ref.size()) << "workers=" << workers;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_TRUE(got[i] == ref[i])
          << "workers=" << workers << " diverged at snapshot " << i << "/"
          << ref.size() << " (pkts_seen " << got[i].pkts_seen << " vs "
          << ref[i].pkts_seen << ", streams_terminated "
          << got[i].streams_terminated << " vs " << ref[i].streams_terminated
          << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeededWorkloads, ShardConservationExact,
                         ::testing::Values(11u, 21u, 31u));

// --- conservation under hostility --------------------------------------------

// Starved config: conservation (not bit-for-bit) must survive nomem drops,
// stream-budget evictions, checksum rejects, defrag and the FDIR command
// queue, at every tick, for every worker count.
TEST(ShardConservationHostile, InvariantsHoldAtEveryTickForAllWorkerCounts) {
  const std::vector<Packet> pkts = adversary_packets(/*seed=*/77, 8000);
  kernel::KernelConfig cfg;
  cfg.memory_size = 256 * 1024;
  cfg.max_streams = 512;
  cfg.defaults.cutoff_bytes = 2048;
  cfg.verify_checksums = true;
  cfg.defragment_ip = true;
  cfg.use_fdir = true;
  cfg.expiry_interval = Duration::from_msec(2);
  cfg.defaults.inactivity_timeout = Duration::from_msec(4);

  for (int workers : {1, 2, 4, 8}) {
    int ticks = 0;
    const auto check = [&](kernel::KernelShards& shards) {
      ++ticks;
      EXPECT_EQ(shards.check_invariants(), "")
          << "workers=" << workers << " tick=" << ticks;
    };
    const std::vector<kernel::KernelStats> snaps =
        replay_sharded(pkts, cfg, workers, /*with_fdir_nic=*/true, check);
    EXPECT_GT(ticks, 3) << "workers=" << workers;
    const kernel::KernelStats& fin = snaps.back();
    EXPECT_EQ(fin.check_conservation(), "") << "workers=" << workers;
    EXPECT_GT(fin.pkts_seen, 0u);
    EXPECT_GT(fin.streams_evicted + fin.pkts_nomem_dropped, 0u)
        << "hostile config failed to starve anything; workers=" << workers;
  }
}

}  // namespace
}  // namespace scap
