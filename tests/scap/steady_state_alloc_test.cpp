// Steady-state allocation test: the dynamic twin of the static guarantee
// tools/scap_callgraph.py proves (DESIGN.md §14). The analyzer shows no
// `operator new` is *reachable* from the SCAP_HOT roots outside waivered
// amortized sites; this test replaces the global allocator with counting
// hooks and shows those amortized sites actually reach zero: once the flow
// table and record pool cover the working set, per-packet lookup work
// performs literally no allocations.
//
// The counting-hook pattern (and the -Wmismatched-new-delete pragma it
// needs under GCC) follows bench/throughput.cpp.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "kernel/flow_table.hpp"
#include "kernel/record_pool.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
// The replacement operator-new family above is malloc/aligned_alloc backed,
// so free() is the correct deallocator for every pointer reaching these —
// GCC's pairing heuristic cannot see that and flags inlined call sites.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace scap::kernel {
namespace {

FiveTuple tuple_for(std::uint16_t port) {
  return {0x0a000001, 0x0a000002, port, 80, kProtoTcp};
}

// The per-packet lookup work — hash, probe, LRU re-link — on a warm table
// must not touch the allocator at all. No waivered amortized site is even
// on this path; the static closure for FlowTable::find/touch is clean, and
// this pins it dynamically.
TEST(SteadyStateAlloc, FlowLookupIsAllocFree) {
  constexpr std::uint16_t kFlows = 256;
  constexpr int kRounds = 1000;

  FlowTable table;
  for (std::uint16_t p = 0; p < kFlows; ++p) {
    ASSERT_NE(table.create(tuple_for(p), Timestamp(p), nullptr), nullptr);
  }

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  std::uint64_t hits = 0;
  Timestamp now(kFlows);
  for (int round = 0; round < kRounds; ++round) {
    for (std::uint16_t p = 0; p < kFlows; ++p) {
      StreamRecord* rec = table.find(tuple_for(p));
      if (rec != nullptr) {
        table.touch(*rec, now);
        ++hits;
      }
      now = now + Duration::from_usec(1);
    }
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);

  EXPECT_EQ(hits, static_cast<std::uint64_t>(kFlows) * kRounds);
  EXPECT_EQ(after - before, 0u)
      << "flow lookup steady state allocated " << (after - before)
      << " time(s)";
}

// Misses (tuples that were never created) probe and return nullptr — also
// alloc-free.
TEST(SteadyStateAlloc, FlowLookupMissIsAllocFree) {
  FlowTable table;
  for (std::uint16_t p = 0; p < 64; ++p) {
    ASSERT_NE(table.create(tuple_for(p), Timestamp(p), nullptr), nullptr);
  }

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  std::uint64_t misses = 0;
  for (int round = 0; round < 1000; ++round) {
    for (std::uint16_t p = 1000; p < 1064; ++p) {
      if (table.find(tuple_for(p)) == nullptr) ++misses;
    }
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);

  EXPECT_EQ(misses, 64u * 1000u);
  EXPECT_EQ(after - before, 0u);
}

// Record churn on a warm pool: grow() reserves the full pool up front
// (that is what its hot-alloc waivers in record_pool.cpp claim), so
// acquire/release cycles within the slab's capacity never allocate.
TEST(SteadyStateAlloc, RecordPoolRecycleIsAllocFree) {
  constexpr std::size_t kSlab = 128;
  RecordPool pool(kSlab);

  // Warm: touch every record once so the slab and freelist exist.
  StreamRecord* warm[kSlab];
  for (std::size_t i = 0; i < kSlab; ++i) warm[i] = pool.acquire();
  for (std::size_t i = kSlab; i-- > 0;) pool.release(warm[i]);

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int round = 0; round < 1000; ++round) {
    StreamRecord* a = pool.acquire();
    StreamRecord* b = pool.acquire();
    pool.release(a);
    pool.release(b);
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "warm record-pool churn allocated " << (after - before)
      << " time(s)";
}

}  // namespace
}  // namespace scap::kernel
