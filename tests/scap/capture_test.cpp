#include "scap/capture.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "tests/kernel/test_helpers.hpp"

namespace scap {
namespace {

using kernel::Direction;
using kernel::ReassemblyMode;
using kernel::StreamStatus;
using kernel::testing::SessionBuilder;
using kernel::testing::client_tuple;

TEST(CaptureTest, InlineModeDispatchesCallbacks) {
  Capture cap("sim0", 1 << 20, ReassemblyMode::kTcpFast, false);
  int created = 0, data = 0, closed = 0;
  std::string text;
  cap.dispatch_creation([&](StreamView&) { ++created; });
  cap.dispatch_data([&](StreamView& sd) {
    ++data;
    text.append(sd.data().begin(), sd.data().end());
  });
  cap.dispatch_termination([&](StreamView& sd) {
    ++closed;
    // The client direction closes with FIN; the reply direction (no FIN
    // seen) is flushed at stop() with a timeout status.
    if (sd.direction() == Direction::kOrig) {
      EXPECT_EQ(sd.status(), StreamStatus::kClosedFin);
    }
  });
  cap.start();
  kernel::testing::CaptureInvariantGuard guard(cap);
  SessionBuilder s;
  Timestamp t(0);
  cap.inject(s.syn(t));
  cap.inject(s.syn_ack(t));
  cap.inject(s.ack(t));
  cap.inject(s.data("hello ", t));
  cap.inject(s.data("scap", t));
  cap.inject(s.fin(t));
  cap.stop();

  EXPECT_EQ(created, 2);  // both directions
  EXPECT_EQ(data, 1);
  EXPECT_GE(closed, 1);
  EXPECT_EQ(text, "hello scap");
}

TEST(CaptureTest, FlowStatsUseCaseFromPaper) {
  // §3.3.1: zero cutoff, stats collected at termination.
  Capture cap("sim0", 1 << 20, ReassemblyMode::kTcpFast, false);
  cap.set_cutoff(0);
  struct Row {
    std::uint64_t bytes, pkts;
  };
  std::map<std::uint16_t, Row> rows;
  cap.dispatch_termination([&](StreamView& sd) {
    rows[sd.tuple().src_port] = {sd.stats().bytes, sd.stats().pkts};
  });
  cap.start();
  kernel::testing::CaptureInvariantGuard guard(cap);
  Timestamp t(0);
  for (std::uint16_t port : {std::uint16_t{1001}, std::uint16_t{1002}}) {
    SessionBuilder s(client_tuple(port, 80));
    cap.inject(s.syn(t));
    cap.inject(s.data("0123456789", t));
    cap.inject(s.data("0123456789", t));
    cap.inject(s.fin(t));
  }
  cap.stop();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1001].bytes, 20u);
  EXPECT_GE(rows[1001].pkts, 4u);
  // No data events should have allocated lasting memory.
  EXPECT_EQ(cap.kernel().allocator().used(), 0u);
}

TEST(CaptureTest, BpfFilterLimitsStreams) {
  Capture cap("sim0", 1 << 20, ReassemblyMode::kTcpFast, false);
  cap.set_filter("dst port 80");
  int created = 0;
  cap.dispatch_creation([&](StreamView&) { ++created; });
  cap.start();
  kernel::testing::CaptureInvariantGuard guard(cap);
  Timestamp t(0);
  SessionBuilder web(client_tuple(4000, 80));
  SessionBuilder ssh(client_tuple(4001, 22));
  cap.inject(web.syn(t));
  cap.inject(ssh.syn(t));
  cap.stop();
  EXPECT_EQ(created, 1);
}

TEST(CaptureTest, KeepChunkMergesDeliveries) {
  Capture cap("sim0", 1 << 20, ReassemblyMode::kTcpFast, true);
  cap.set_parameter(Parameter::kChunkSize, 8);
  std::vector<std::string> deliveries;
  std::vector<std::string> payloads;
  bool first = true;
  cap.dispatch_data([&](StreamView& sd) {
    deliveries.emplace_back(sd.data().begin(), sd.data().end());
    while (const auto* rec = sd.next_packet()) {
      auto p = sd.packet_payload(*rec);
      payloads.emplace_back(p.begin(), p.end());
    }
    if (first) {
      sd.keep_chunk();
      first = false;
    }
  });
  cap.start();
  kernel::testing::CaptureInvariantGuard guard(cap);
  SessionBuilder s;
  Timestamp t(0);
  cap.inject(s.syn(t));
  cap.inject(s.data("AAAAAAAA", t));  // chunk 1 (kept)
  cap.inject(s.data("BBBBBBBB", t));  // chunk 2 → delivered merged
  cap.inject(s.fin(t));
  cap.stop();
  ASSERT_GE(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], "AAAAAAAA");
  EXPECT_EQ(deliveries[1], "AAAAAAAABBBBBBBB");
  // Packet records of the merged delivery must resolve to the right bytes:
  // the second chunk's records are shifted past the retained prefix.
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[0], "AAAAAAAA");  // first delivery (kept chunk)
  EXPECT_EQ(payloads[1], "AAAAAAAA");  // merged: retained chunk's record
  EXPECT_EQ(payloads[2], "BBBBBBBB");  // merged: shifted completed-chunk record
  EXPECT_EQ(cap.kernel().allocator().used(), 0u);
}

TEST(CaptureTest, PerStreamCutoffFromCallback) {
  Capture cap("sim0", 1 << 20, ReassemblyMode::kTcpFast, false);
  cap.dispatch_creation([&](StreamView& sd) {
    if (sd.tuple().dst_port == 80) sd.set_cutoff(4);
  });
  std::map<std::uint16_t, std::uint64_t> captured;
  cap.dispatch_termination([&](StreamView& sd) {
    captured[sd.tuple().src_port] = sd.stats().captured_bytes;
  });
  cap.start();
  kernel::testing::CaptureInvariantGuard guard(cap);
  Timestamp t(0);
  SessionBuilder limited(client_tuple(5001, 80));
  SessionBuilder full(client_tuple(5002, 443));
  for (auto* s : {&limited, &full}) {
    cap.inject(s->syn(t));
    cap.inject(s->data("0123456789", t));
    cap.inject(s->fin(t));
  }
  cap.stop();
  EXPECT_EQ(captured[5001], 4u);
  EXPECT_EQ(captured[5002], 10u);
}

TEST(CaptureTest, DiscardStreamFromCallback) {
  Capture cap("sim0", 1 << 20, ReassemblyMode::kTcpFast, false);
  int data_events = 0;
  cap.dispatch_data([&](StreamView& sd) {
    ++data_events;
    sd.discard();
  });
  cap.set_parameter(Parameter::kChunkSize, 4);
  cap.start();
  kernel::testing::CaptureInvariantGuard guard(cap);
  SessionBuilder s;
  Timestamp t(0);
  cap.inject(s.syn(t));
  cap.inject(s.data("0123", t));    // delivers chunk -> handler discards
  cap.inject(s.data("4567", t));    // discarded in kernel
  cap.inject(s.data("89ab", t));    // discarded
  cap.inject(s.fin(t));
  cap.stop();
  EXPECT_EQ(data_events, 1);
}

TEST(CaptureTest, PacketDeliveryThroughStreamView) {
  Capture cap("sim0", 1 << 20, ReassemblyMode::kTcpFast, true);
  std::vector<std::uint32_t> caplens;
  std::string text;
  cap.dispatch_data([&](StreamView& sd) {
    while (const kernel::PacketRecord* rec = sd.next_packet()) {
      caplens.push_back(rec->caplen);
      auto pay = sd.packet_payload(*rec);
      text.append(pay.begin(), pay.end());
    }
  });
  cap.start();
  kernel::testing::CaptureInvariantGuard guard(cap);
  SessionBuilder s;
  Timestamp t(0);
  cap.inject(s.syn(t));
  cap.inject(s.data("aaa", t));
  cap.inject(s.data("bbbbb", t));
  cap.inject(s.fin(t));
  cap.stop();
  ASSERT_EQ(caplens.size(), 2u);
  EXPECT_EQ(caplens[0], 3u);
  EXPECT_EQ(caplens[1], 5u);
  EXPECT_EQ(text, "aaabbbbb");
}

TEST(CaptureTest, ThreadedModeDeliversEverything) {
  Capture cap("sim0", 1 << 20, ReassemblyMode::kTcpFast, false);
  cap.set_worker_threads(2);
  std::mutex mu;
  std::uint64_t total_bytes = 0;
  int terminations = 0;
  cap.dispatch_data([&](StreamView& sd) {
    std::scoped_lock lock(mu);
    total_bytes += sd.data_len();
  });
  cap.dispatch_termination([&](StreamView&) {
    std::scoped_lock lock(mu);
    ++terminations;
  });
  cap.start();
  kernel::testing::CaptureInvariantGuard guard(cap);
  Timestamp t(0);
  const int kStreams = 50;
  for (int i = 0; i < kStreams; ++i) {
    SessionBuilder s(client_tuple(static_cast<std::uint16_t>(10000 + i), 80));
    cap.inject(s.syn(t));
    cap.inject(s.data("0123456789ABCDEF", t));
    cap.inject(s.fin(t));
  }
  cap.stop();
  std::scoped_lock lock(mu);
  EXPECT_EQ(total_bytes, 16u * kStreams);
  EXPECT_EQ(terminations, kStreams);
}

TEST(CaptureTest, StatsAggregate) {
  Capture cap("sim0", 1 << 20, ReassemblyMode::kTcpFast, false);
  cap.start();
  kernel::testing::CaptureInvariantGuard guard(cap);
  SessionBuilder s;
  Timestamp t(0);
  cap.inject(s.syn(t));
  cap.inject(s.data("payload", t));
  cap.inject(s.fin(t));
  cap.stop();
  CaptureStats st = cap.stats();
  EXPECT_EQ(st.kernel.pkts_seen, 3u);
  EXPECT_EQ(st.kernel.bytes_stored, 7u);
  EXPECT_GE(st.events_dispatched, 3u);
}

TEST(CaptureTest, StrictModeEndToEnd) {
  Capture cap("sim0", 1 << 20, ReassemblyMode::kTcpStrict, false);
  std::string text;
  cap.dispatch_data(
      [&](StreamView& sd) { text.append(sd.data().begin(), sd.data().end()); });
  cap.start();
  kernel::testing::CaptureInvariantGuard guard(cap);
  SessionBuilder s;
  Timestamp t(0);
  cap.inject(s.syn(t));
  // Out-of-order segments.
  std::uint32_t base = s.client_seq();
  cap.inject(s.data_at(base + 6, "world!", t));
  cap.inject(s.data_at(base, "hello ", t));
  TcpSegmentSpec fin;
  fin.tuple = s.tuple();
  fin.seq = base + 12;
  fin.flags = kTcpFin | kTcpAck;
  cap.inject(make_tcp_packet(fin, t));
  cap.stop();
  EXPECT_EQ(text, "hello world!");
}

TEST(CaptureTest, StartTwiceThrows) {
  Capture cap("sim0", 1 << 20, ReassemblyMode::kTcpFast, false);
  cap.start();
  kernel::testing::CaptureInvariantGuard guard(cap);
  EXPECT_THROW(cap.start(), std::logic_error);
}

TEST(CaptureTest, InjectBeforeStartThrows) {
  Capture cap("sim0", 1 << 20, ReassemblyMode::kTcpFast, false);
  SessionBuilder s;
  EXPECT_THROW(cap.inject(s.syn(Timestamp(0))), std::logic_error);
}

}  // namespace
}  // namespace scap
