// Threaded-dispatch concurrency smoke (run under SCAP_SANITIZE=thread).
//
// Exercises every cross-thread edge of the threaded capture mode at once:
// a producer thread pushes adversarial batches through inject_batch (NIC
// classification + kernel under kernel_mutex_), worker threads drain event
// queues and run the callbacks while holding the same lock, and the main
// thread concurrently polls Capture::stats() the way a monitoring loop
// would. TSan verifies the locking protocol; in a plain build this is a
// functional smoke that threaded delivery loses no events.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "faultinject/adversary.hpp"
#include "scap/capture.hpp"

namespace scap {
namespace {

TEST(ConcurrencySmoke, ProducerWorkersAndStatsPoller) {
  Capture cap("tsan0", 512 * 1024, kernel::ReassemblyMode::kTcpFast,
              /*need_pkts=*/false);
  cap.set_worker_threads(2);
  cap.set_cutoff(64 * 1024);

  // Callbacks run on worker threads; count them with atomics.
  std::atomic<std::uint64_t> created{0}, data{0}, terminated{0};
  std::atomic<std::uint64_t> data_bytes{0};
  cap.dispatch_creation([&](StreamView&) { created.fetch_add(1); });
  cap.dispatch_data([&](StreamView& sv) {
    data.fetch_add(1);
    data_bytes.fetch_add(sv.data_len());
  });
  cap.dispatch_termination([&](StreamView&) { terminated.fetch_add(1); });

  cap.start();

  constexpr std::uint64_t kPackets = 6000;
  constexpr std::size_t kBatch = 32;
  std::atomic<bool> producing{true};
  std::thread producer([&] {
    faultinject::AdversaryConfig acfg;
    acfg.seed = 99;
    acfg.packets = kPackets;
    faultinject::AdversaryGen gen(acfg);
    std::vector<Packet> batch;
    batch.reserve(kBatch);
    for (std::uint64_t i = 0; i < kPackets; ++i) {
      batch.push_back(gen.next());
      if (batch.size() == kBatch) {
        cap.inject_batch(batch);
        batch.clear();
      }
    }
    if (!batch.empty()) cap.inject_batch(batch);
    producing.store(false);
  });

  // Monitoring loop: hammer stats() while the producer and workers run.
  std::uint64_t polls = 0;
  while (producing.load()) {
    const CaptureStats s = cap.stats();
    EXPECT_LE(s.kernel.pkts_stored, s.kernel.pkts_seen);
    ++polls;
    std::this_thread::yield();
  }
  producer.join();
  cap.stop();  // joins workers and flushes remaining streams

  EXPECT_GT(polls, 0u);
  EXPECT_GT(created.load(), 0u);
  EXPECT_GT(data.load(), 0u);
  EXPECT_GT(terminated.load(), 0u);

  // Nothing raced its way out of the books: the conservation suite still
  // balances on every shard and on the aggregate, and every emitted event
  // was dispatched exactly once.
  EXPECT_EQ(cap.check_invariants(), "");
  const CaptureStats s = cap.stats();
  EXPECT_EQ(s.events_dispatched, s.kernel.events_emitted);
  EXPECT_EQ(s.kernel.pkts_seen + s.nic_dropped_by_filter, kPackets);
}

// Same producer/worker storm with tracing attached: each shard kernel
// records into its own single-ring tracer on its worker thread, the
// producer records NIC events into the capture-level tracer, and stats()
// presents the merged totals (TSan checks the locking; this checks the
// contents).
TEST(ConcurrencySmoke, TracedWorkersKeepPerShardRingsConsistent) {
  Capture cap("tsan1", 512 * 1024, kernel::ReassemblyMode::kTcpFast,
              /*need_pkts=*/false);
  cap.set_worker_threads(2);
  cap.set_cutoff(64 * 1024);
  cap.dispatch_data([](StreamView&) {});
  cap.dispatch_termination([](StreamView&) {});
  cap.enable_tracing(1 << 12);
  cap.start();

  constexpr std::uint64_t kPackets = 6000;
  constexpr std::size_t kBatch = 32;
  std::thread producer([&] {
    faultinject::AdversaryConfig acfg;
    acfg.seed = 1234;
    acfg.packets = kPackets;
    faultinject::AdversaryGen gen(acfg);
    std::vector<Packet> batch;
    batch.reserve(kBatch);
    for (std::uint64_t i = 0; i < kPackets; ++i) {
      batch.push_back(gen.next());
      if (batch.size() == kBatch) {
        cap.inject_batch(batch);
        batch.clear();
      }
    }
    if (!batch.empty()) cap.inject_batch(batch);
  });
  producer.join();
  cap.stop();

  EXPECT_EQ(cap.check_invariants(), "");
  const CaptureStats s = cap.stats();
  kernel::KernelShards& shards = *cap.shards();

#if defined(SCAP_ENABLE_TRACE)
  // Workers are joined: direct shard-tracer access is safe. Events landed
  // in the ring of the shard kernel that recorded them (each records as
  // its own core 0), with sane types, and per-ring packet-verdict
  // timestamps never run backwards (each shard's packets are processed in
  // capture order).
  using trace::TraceEventType;
  std::uint64_t retained = 0;
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t verdicts = 0, created = 0, terminated_ev = 0, chunks = 0;
  std::uint64_t dispatched = 0;
  for (int shard = 0; shard < shards.num_shards(); ++shard) {
    const trace::Tracer& tracer = *shards.tracer(shard);
    ASSERT_EQ(tracer.cores(), 1u);
    const trace::TraceRing& ring = tracer.ring(0);
    retained += ring.size();
    recorded += tracer.recorded();
    dropped += tracer.dropped();
    verdicts += tracer.recorded_of(TraceEventType::kPacketVerdict);
    created += tracer.recorded_of(TraceEventType::kStreamCreated);
    terminated_ev += tracer.recorded_of(TraceEventType::kStreamTerminated);
    chunks += tracer.recorded_of(TraceEventType::kChunkDelivered);
    dispatched += tracer.recorded_of(TraceEventType::kEventDispatched);
    std::int64_t last_verdict_ts = -1;
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const trace::TraceEvent& ev = ring.at(i);
      ASSERT_LT(static_cast<std::size_t>(ev.type),
                trace::kNumTraceEventTypes);
      EXPECT_EQ(ev.core, 0u);
      if (ev.type == TraceEventType::kPacketVerdict) {
        EXPECT_GE(ev.ts_ns, last_verdict_ts);
        last_verdict_ts = ev.ts_ns;
      }
    }
  }
  EXPECT_EQ(retained + dropped, recorded);
  // The merged stats view = shard tracers + the producer's NIC tracer.
  const trace::Tracer& nic_tracer = *cap.tracer();
  EXPECT_EQ(s.trace_events_recorded, recorded + nic_tracer.recorded());

  // Count laws survive the thundering herd (wrap-independent counters).
  EXPECT_EQ(verdicts, s.kernel.pkts_seen);
  EXPECT_EQ(created, s.kernel.streams_created);
  EXPECT_EQ(terminated_ev, s.kernel.streams_terminated);
  EXPECT_EQ(chunks, s.kernel.chunks_delivered);
  EXPECT_EQ(dispatched, s.events_dispatched);
#else
  EXPECT_EQ(cap.tracer()->recorded(), 0u);
  EXPECT_EQ(s.trace_events_recorded, 0u);
#endif
}

// Regression test for the inline-mode half of Capture::stats(): a
// monitoring callback may call stats() from inside a dispatch callback
// (same thread, serialization capability already asserted). stats() must
// take the lock-free inline branch — if it ever tried to acquire
// kernel_mutex_ here it would self-deadlock in threaded builds of the same
// code path, and the old `workers_.empty()` branch selector this replaced
// was a racy read. Also drives a StreamView control call from the same
// context, which asserts the identical capabilities.
TEST(ConcurrencySmoke, StatsInsideInlineCallback) {
  Capture cap("inline0", 512 * 1024, kernel::ReassemblyMode::kTcpFast,
              /*need_pkts=*/false);
  cap.set_cutoff(64 * 1024);

  std::uint64_t data_events = 0;
  std::uint64_t last_pkts_seen = 0;
  cap.dispatch_data([&](StreamView& sv) {
    ++data_events;
    const CaptureStats s = cap.stats();  // re-entrant: must not lock
    EXPECT_GE(s.kernel.pkts_seen, last_pkts_seen);
    last_pkts_seen = s.kernel.pkts_seen;
    EXPECT_LE(s.kernel.pkts_stored, s.kernel.pkts_seen);
    sv.set_cutoff(32 * 1024);  // control call from dispatch context
  });
  cap.dispatch_termination([&](StreamView&) {
    const CaptureStats s = cap.stats();
    EXPECT_LE(s.events_dispatched, s.kernel.events_emitted);
  });

  cap.start();

  constexpr std::uint64_t kPackets = 4000;
  faultinject::AdversaryConfig acfg;
  acfg.seed = 55;
  acfg.packets = kPackets;
  faultinject::AdversaryGen gen(acfg);
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    cap.inject(gen.next());
  }
  cap.stop();

  EXPECT_GT(data_events, 0u);
  EXPECT_GT(last_pkts_seen, 0u);
  EXPECT_EQ(cap.kernel().check_invariants(), "");
  const CaptureStats s = cap.stats();
  EXPECT_EQ(s.events_dispatched, s.kernel.events_emitted);
  EXPECT_EQ(s.kernel.pkts_seen + s.nic_dropped_by_filter, kPackets);
}

}  // namespace
}  // namespace scap
