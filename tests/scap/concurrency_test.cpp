// Threaded-dispatch concurrency smoke (run under SCAP_SANITIZE=thread).
//
// Exercises every cross-thread edge of the threaded capture mode at once:
// a producer thread pushes adversarial batches through inject_batch (NIC
// classification + kernel under kernel_mutex_), worker threads drain event
// queues and run the callbacks while holding the same lock, and the main
// thread concurrently polls Capture::stats() the way a monitoring loop
// would. TSan verifies the locking protocol; in a plain build this is a
// functional smoke that threaded delivery loses no events.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "faultinject/adversary.hpp"
#include "scap/capture.hpp"

namespace scap {
namespace {

TEST(ConcurrencySmoke, ProducerWorkersAndStatsPoller) {
  Capture cap("tsan0", 512 * 1024, kernel::ReassemblyMode::kTcpFast,
              /*need_pkts=*/false);
  cap.set_worker_threads(2);
  cap.set_cutoff(64 * 1024);

  // Callbacks run on worker threads; count them with atomics.
  std::atomic<std::uint64_t> created{0}, data{0}, terminated{0};
  std::atomic<std::uint64_t> data_bytes{0};
  cap.dispatch_creation([&](StreamView&) { created.fetch_add(1); });
  cap.dispatch_data([&](StreamView& sv) {
    data.fetch_add(1);
    data_bytes.fetch_add(sv.data_len());
  });
  cap.dispatch_termination([&](StreamView&) { terminated.fetch_add(1); });

  cap.start();

  constexpr std::uint64_t kPackets = 6000;
  constexpr std::size_t kBatch = 32;
  std::atomic<bool> producing{true};
  std::thread producer([&] {
    faultinject::AdversaryConfig acfg;
    acfg.seed = 99;
    acfg.packets = kPackets;
    faultinject::AdversaryGen gen(acfg);
    std::vector<Packet> batch;
    batch.reserve(kBatch);
    for (std::uint64_t i = 0; i < kPackets; ++i) {
      batch.push_back(gen.next());
      if (batch.size() == kBatch) {
        cap.inject_batch(batch);
        batch.clear();
      }
    }
    if (!batch.empty()) cap.inject_batch(batch);
    producing.store(false);
  });

  // Monitoring loop: hammer stats() while the producer and workers run.
  std::uint64_t polls = 0;
  while (producing.load()) {
    const CaptureStats s = cap.stats();
    EXPECT_LE(s.kernel.pkts_stored, s.kernel.pkts_seen);
    ++polls;
    std::this_thread::yield();
  }
  producer.join();
  cap.stop();  // joins workers and flushes remaining streams

  EXPECT_GT(polls, 0u);
  EXPECT_GT(created.load(), 0u);
  EXPECT_GT(data.load(), 0u);
  EXPECT_GT(terminated.load(), 0u);

  // Nothing raced its way out of the books: the conservation suite still
  // balances and every emitted event was dispatched exactly once.
  EXPECT_EQ(cap.kernel().check_invariants(), "");
  const CaptureStats s = cap.stats();
  EXPECT_EQ(s.events_dispatched, s.kernel.events_emitted);
  EXPECT_EQ(s.kernel.pkts_seen + s.nic_dropped_by_filter, kPackets);
}

}  // namespace
}  // namespace scap
