// Thread-schedule perturbation determinism (DESIGN.md §15).
//
// The static taint gate (tools/scap_taint.py) proves no scheduling-
// dependent value reaches an observable output; this is its dynamic twin.
// A seeded adversarial workload replays through the 4-worker sharded
// datapath twice: once undisturbed, once with FaultPoint::kWorkerDelay
// napping workers *after* they pop a batch — which shifts producer-side
// ring occupancy, wakeup timing and every batch boundary. Everything the
// replay/repro suite compares must not move:
//
//   - the normalized shard-aggregate KernelStats at every maintenance
//     tick (normalization zeroes exactly the fields the determinism
//     registry classifies kShardGeometry / kSchedulingDependent — the
//     same derivation shard_conservation_test uses), and
//   - the per-shard golden trace timelines, byte for byte (event content
//     is virtual-time driven; only the scheduling-dependent histogram
//     block is excluded, per its registry class).
//
// The config keeps rings ample and watermarks off so no shed/stall events
// exist to begin with — their keyed reproducibility under pressure is
// chaos_smoke_mc's job; this test pins the stronger bit-identical claim
// on the undisturbed-admission path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "base/mutex.hpp"
#include "faultinject/adversary.hpp"
#include "faultinject/faultinject.hpp"
#include "kernel/shard.hpp"
#include "kernel/stats_determinism.hpp"
#include "trace/export.hpp"

namespace scap {
namespace {

/// Zero every field the determinism registry classifies as shard-geometry
/// or scheduling-dependent (stats_determinism.inc, DESIGN.md §15).
kernel::KernelStats normalized(kernel::KernelStats s) {
  using kernel::StatDeterminism;
#define SCAP_STATS_FIELD(field, determinism)          \
  if constexpr (StatDeterminism::determinism !=       \
                StatDeterminism::kDeterministic) {    \
    s.field = 0;                                      \
  }
#define SCAP_STATS_ARRAY(field, determinism)            \
  if constexpr (StatDeterminism::determinism !=         \
                StatDeterminism::kDeterministic) {      \
    std::fill(std::begin(s.field), std::end(s.field), 0); \
  }
#include "kernel/stats_determinism.inc"
  return s;
}

struct Replay {
  std::vector<kernel::KernelStats> snaps;  // normalized, one per tick + final
  std::vector<std::string> traces;         // per-shard golden text timelines
};

constexpr int kWorkers = 4;

/// Replay the workload through a traced 4-worker KernelShards with the
/// same in-band maintenance-tick discipline shard_conservation_test uses,
/// snapshotting the normalized aggregate at every tick and serializing
/// each shard's trace timeline after stop().
Replay replay(const std::vector<Packet>& pkts,
              const kernel::KernelConfig& cfg) {
  kernel::KernelShards::Options opts;
  // Ample ring so a napping worker backs occupancy up instead of ever
  // shedding; perturbation must change *pressure*, not admission verdicts.
  opts.ring_capacity = 1 << 15;
  opts.trace = trace::TraceConfig{/*ring_capacity=*/1 << 16, /*cores=*/1};
  kernel::KernelShards shards(cfg, kWorkers, opts);
  base::SerialGuard prod(shards.producer());
  shards.start({});

  Replay out;
  const Duration tick = cfg.expiry_interval;
  bool anchored = false;
  Timestamp next{};
  Timestamp last{};
  for (const Packet& p : pkts) {
    if (!anchored) {
      next = p.timestamp() + tick;
      anchored = true;
    }
    while (p.timestamp() >= next) {
      shards.tick_all(next);
      shards.flush();
      out.snaps.push_back(normalized(shards.stats()));
      next = next + tick;
    }
    shards.submit(p);
    last = p.timestamp();
  }
  shards.flush();
  out.snaps.push_back(normalized(shards.stats()));
  shards.stop(last);
  out.snaps.push_back(normalized(shards.stats()));

  // Quiescent after stop(): serialize each shard's timeline. The
  // histogram block is deliberately not serialized — queue_occupancy is
  // registry-classified kSchedulingDependent.
  for (int i = 0; i < shards.num_shards(); ++i) {
    const trace::Tracer* t = shards.tracer(i);
    EXPECT_NE(t, nullptr);
    if (t == nullptr) continue;
    EXPECT_EQ(t->dropped(), 0u) << "trace ring wrapped; grow the capacity";
    std::ostringstream os;
    trace::write_text(*t, trace::kernel_schema(), os);
    out.traces.push_back(os.str());
  }
  // No admission pressure, no watchdog: the producer-side tracer must
  // stay silent, or the "no shed/stall events exist" premise is broken.
  if (shards.producer_tracer() != nullptr) {
    EXPECT_EQ(shards.producer_tracer()->recorded(), 0u);
  }
  return out;
}

void expect_identical(const Replay& ref, const Replay& got,
                      const char* what) {
  ASSERT_EQ(got.snaps.size(), ref.snaps.size()) << what;
  for (std::size_t i = 0; i < ref.snaps.size(); ++i) {
    EXPECT_TRUE(got.snaps[i] == ref.snaps[i])
        << what << ": normalized aggregate diverged at snapshot " << i << "/"
        << ref.snaps.size() << " (pkts_seen " << got.snaps[i].pkts_seen
        << " vs " << ref.snaps[i].pkts_seen << ")";
  }
  ASSERT_EQ(got.traces.size(), ref.traces.size()) << what;
  for (std::size_t i = 0; i < ref.traces.size(); ++i) {
    EXPECT_EQ(got.traces[i], ref.traces[i])
        << what << ": shard " << i << " golden trace timeline diverged";
  }
}

TEST(SchedulePerturbation, DelayedWorkersChangeNothingObservable) {
  faultinject::AdversaryConfig acfg;
  acfg.seed = 42;
  acfg.packets = 6000;
  const std::vector<Packet> pkts =
      faultinject::AdversaryGen(acfg).generate();

  kernel::KernelConfig cfg;
  cfg.memory_size = 256ull << 20;
  cfg.max_streams = 0;
  cfg.defaults.cutoff_bytes = 4096;
  cfg.expiry_interval = Duration::from_msec(2);
  cfg.defaults.inactivity_timeout = Duration::from_msec(4);

  const Replay ref = replay(pkts, cfg);
  ASSERT_GE(ref.snaps.size(), 4u) << "tick grid produced too few snapshots";
  EXPECT_GT(ref.snaps.back().pkts_seen, 0u);

  // Two distinct perturbation schedules: a periodic nap on every shard,
  // and a denser hashed nap victimizing a single shard (worst skew).
  {
    faultinject::InjectionPlan plan;
    plan.seed = 7;
    plan.at(faultinject::FaultPoint::kWorkerDelay).every_n = 3;
    faultinject::FaultInjector inj(plan);
    faultinject::FaultScope scope(inj);
    const Replay got = replay(pkts, cfg);
    EXPECT_GT(inj.injected(faultinject::FaultPoint::kWorkerDelay), 0u)
        << "perturbation never fired; the test is vacuous";
    expect_identical(ref, got, "every-3rd-batch nap");
  }
  {
    faultinject::InjectionPlan plan;
    plan.seed = 9;
    plan.at(faultinject::FaultPoint::kWorkerDelay).probability = 0.5;
    plan.at(faultinject::FaultPoint::kWorkerDelay).only_key = 1;
    faultinject::FaultInjector inj(plan);
    faultinject::FaultScope scope(inj);
    const Replay got = replay(pkts, cfg);
    EXPECT_GT(inj.injected(faultinject::FaultPoint::kWorkerDelay), 0u)
        << "perturbation never fired; the test is vacuous";
    expect_identical(ref, got, "skewed single-shard nap");
  }
}

}  // namespace
}  // namespace scap
