#include "analysis/queueing.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace scap::analysis {
namespace {

TEST(Mm1nLoss, KnownValues) {
  // N=1: P = (1-ρ)ρ / (1-ρ²) = ρ/(1+ρ).
  EXPECT_NEAR(mm1n_loss(0.5, 1), 0.5 / 1.5, 1e-12);
  // Tiny loss for low load and moderate N.
  EXPECT_LT(mm1n_loss(0.1, 10), 1e-9);
  // Heavy load: loss approaches 1 - 1/ρ for large N.
  EXPECT_NEAR(mm1n_loss(2.0, 50), 0.5, 1e-6);
}

TEST(Mm1nLoss, MonotoneDecreasingInN) {
  for (double rho : {0.1, 0.5, 0.9}) {
    double prev = 1.0;
    for (int n = 1; n <= 200; n += 10) {
      double loss = mm1n_loss(rho, n);
      EXPECT_LT(loss, prev) << "rho=" << rho << " n=" << n;
      prev = loss;
    }
  }
}

TEST(Mm1nLoss, PaperFig11Shape) {
  // "a memory size of a few tens of packet slots reduces the probability
  //  that a high-priority packet is lost to 1e-8" (§7):
  EXPECT_LT(mm1n_loss(0.1, 10), 1e-8);   // ρ=0.1: <10 slots suffice
  EXPECT_LT(mm1n_loss(0.5, 28), 1e-8);   // ρ=0.5: a little over 20 slots
  EXPECT_GT(mm1n_loss(0.5, 10), 1e-8);
  EXPECT_LT(mm1n_loss(0.9, 170), 1e-8);  // ρ=0.9: ~150+ slots
  EXPECT_GT(mm1n_loss(0.9, 100), 1e-8);
}

TEST(Mm1nLoss, RhoOneDegenerate) {
  EXPECT_NEAR(mm1n_loss(1.0, 9), 0.1, 1e-9);
}

TEST(Mm1nLoss, AgreesWithBirthDeathSolver) {
  for (double rho : {0.3, 0.7, 1.5}) {
    for (int n : {5, 20, 60}) {
      std::vector<double> lambda(static_cast<std::size_t>(n), rho);
      auto pi = birth_death_stationary(lambda, 1.0);
      EXPECT_NEAR(mm1n_loss(rho, n), pi.back(), 1e-9)
          << "rho=" << rho << " n=" << n;
    }
  }
}

TEST(TwoLevelLoss, HighAlwaysBelowMedium) {
  for (int n : {2, 5, 10, 20, 40}) {
    auto loss = two_level_loss(0.6, 0.3, n);
    EXPECT_LT(loss.high, loss.medium) << "n=" << n;
    EXPECT_GE(loss.high, 0.0);
    EXPECT_LE(loss.medium, 1.0);
  }
}

TEST(TwoLevelLoss, PaperFig12Shape) {
  // ρ1 = ρ2 = 0.3: "a few tens of packet slots reduce the loss probability
  // for both priorities to practically zero".
  auto loss = two_level_loss(0.3, 0.3, 20);
  EXPECT_LT(loss.high, 1e-10);
  EXPECT_LT(loss.medium, 1e-8);
  // Small regions leak noticeably.
  auto tight = two_level_loss(0.3, 0.3, 3);
  EXPECT_GT(tight.medium, 1e-5);
}

TEST(TwoLevelLoss, AgreesWithBirthDeathSolver) {
  const double rho1 = 0.5, rho2 = 0.25;
  for (int n : {4, 10, 25}) {
    // Chain: states 0..2N; births at rho1 for 0..N-1, rho2 for N..2N-1.
    std::vector<double> lambda;
    for (int i = 0; i < n; ++i) lambda.push_back(rho1);
    for (int i = 0; i < n; ++i) lambda.push_back(rho2);
    auto pi = birth_death_stationary(lambda, 1.0);
    auto loss = two_level_loss(rho1, rho2, n);
    // High-priority loss = P(state 2N).
    EXPECT_NEAR(loss.high, pi.back(), 1e-12) << "n=" << n;
    // Medium loss = P(state >= N).
    double tail = 0.0;
    for (std::size_t k = static_cast<std::size_t>(n); k < pi.size(); ++k) {
      tail += pi[k];
    }
    EXPECT_NEAR(loss.medium, tail, 1e-12) << "n=" << n;
  }
}

TEST(BirthDeath, NormalizedAndPositive) {
  auto pi = birth_death_stationary({0.5, 1.0, 2.0}, 1.0);
  ASSERT_EQ(pi.size(), 4u);
  double sum = 0.0;
  for (double p : pi) {
    EXPECT_GT(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Detailed balance: pi[i+1] = pi[i] * lambda[i] / mu.
  EXPECT_NEAR(pi[1], pi[0] * 0.5, 1e-12);
  EXPECT_NEAR(pi[3], pi[2] * 2.0, 1e-12);
}

}  // namespace
}  // namespace scap::analysis
