// Shared experiment workloads — the stand-in for the paper's single campus
// trace that every figure replays at different rates.
//
// Scale: by default traces are sized to finish the full bench suite in
// minutes on a laptop; set SCAP_BENCH_SCALE=full for larger traces (closer
// to the paper's 58M-packet replay, at proportionally longer runtimes).
#pragma once

#include "bench/common/report.hpp"
#include "flowgen/workload.hpp"
#include "match/aho_corasick.hpp"
#include "match/corpus.hpp"

namespace scap::bench {

inline const std::vector<std::string>& vrt_patterns() {
  static const std::vector<std::string> patterns =
      match::make_corpus({.pattern_count = 2120});
  return patterns;
}

inline const match::AhoCorasick& vrt_automaton() {
  static const match::AhoCorasick ac(vrt_patterns());
  return ac;
}

/// The campus-like trace with planted web-attack patterns.
inline const flowgen::Trace& campus_trace() {
  static const flowgen::Trace trace = [] {
    flowgen::WorkloadConfig cfg;
    cfg.flows = full_scale() ? 12000 : 2500;
    cfg.seed = 2013;
    cfg.patterns = vrt_patterns();
    cfg.plant_probability = 0.15;
    return flowgen::build_trace(cfg);
  }();
  return trace;
}

/// Rate sweep of the paper's evaluation (0.25 - 6 Gbit/s).
inline std::vector<double> rate_sweep() {
  return {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0,
          3.5,  4.0, 4.5,  5.0, 5.5, 6.0};
}

/// Ground-truth count of *directional* streams carrying payload — the
/// denominator for lost-stream percentages (the Scap kernel and the
/// baseline engines both deliver per direction).
inline std::uint64_t directional_streams_with_data(
    const flowgen::Trace& trace) {
  std::uint64_t n = 0;
  for (const auto& f : trace.flows) {
    if (f.client_bytes > 0) ++n;
    if (f.tcp && f.server_bytes > 0) ++n;
  }
  return n;
}

}  // namespace scap::bench
