// Experiment driver: runs a replayed trace through either the Scap stack or
// a libpcap-style baseline stack, with full cycle accounting.
//
// Pipeline topology (mirrors the paper's testbed):
//
//   Scap:      NIC(RSS+FDIR) -> per-core softirq server (kernel module:
//              flow tracking + reassembly + PPL) -> per-worker user server
//              (event dispatch + optional pattern matching)
//
//   Baseline:  NIC(RSS) -> per-core softirq server (PF_PACKET ring copy)
//              -> ONE shared 512MB capture ring -> single user thread
//              (libpcap delivery + user-level engine + optional matching)
//
// Every stage is a sim::QueueServer; packets/events denied admission are
// the experiment's "dropped packets". The chunk-buffer release times of
// Scap events feed back into PPL through a time-ordered release heap, so
// a slow worker genuinely causes kernel-level drops — the paper's overload
// behaviour.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "baseline/engine.hpp"
#include "baseline/nids.hpp"
#include "baseline/stream5.hpp"
#include "baseline/yaf.hpp"
#include "flowgen/replay.hpp"
#include "kernel/module.hpp"
#include "match/aho_corasick.hpp"
#include "nic/nic.hpp"
#include "sim/cache.hpp"
#include "sim/costs.hpp"
#include "sim/queue_server.hpp"

namespace scap::bench {

struct RunResult {
  std::uint64_t pkts_offered = 0;
  std::uint64_t pkts_dropped = 0;        // ring overflow + PPL + no-memory
  std::uint64_t pkts_nic_filtered = 0;   // FDIR subzero discards (not loss)
  std::uint64_t bytes_offered = 0;
  double duration_sec = 0.0;

  double drop_pct() const {
    return pkts_offered
               ? 100.0 * static_cast<double>(pkts_dropped) /
                     static_cast<double>(pkts_offered)
               : 0.0;
  }
  double cpu_user_pct = 0.0;   // application CPU (one core, or avg worker)
  double softirq_pct = 0.0;    // aggregate softirq load over all cores

  std::uint64_t matches = 0;
  std::uint64_t streams_tracked = 0;
  std::uint64_t streams_with_data = 0;

  // Per-priority accounting (Fig. 9).
  std::uint64_t prio_pkts[2] = {0, 0};
  std::uint64_t prio_dropped[2] = {0, 0};

  // Cache model output (Fig. 7).
  std::uint64_t l2_misses = 0;
  double l2_misses_per_pkt = 0.0;
};

/// Time-ordered replay of memory touches through the cache model, so the
/// cache sees accesses in virtual-time order, not program order.
class CacheTracker {
 public:
  void add(Timestamp t, std::uint64_t addr, std::uint64_t len) {
    heap_.push(Access{t.ns(), seq_++, addr, len});
  }
  void drain_until(Timestamp t);
  void flush();
  std::uint64_t misses() const { return cache_.misses(); }

  /// Stable virtual base address for a stream's reassembly buffer.
  std::uint64_t stream_base(const FiveTuple& tuple);

 private:
  struct Access {
    std::int64_t t_ns;
    std::uint64_t seq;
    std::uint64_t addr;
    std::uint64_t len;
    bool operator>(const Access& o) const {
      return t_ns != o.t_ns ? t_ns > o.t_ns : seq > o.seq;
    }
  };
  sim::CacheModel cache_;
  std::priority_queue<Access, std::vector<Access>, std::greater<>> heap_;
  std::uint64_t seq_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> bases_;
  std::uint64_t next_base_ = 1ull << 33;  // away from the ring's range
};

// --- Scap pipeline -----------------------------------------------------------

struct ScapRunOptions {
  sim::CostTable costs = sim::default_costs();
  int softirq_cores = 8;
  int worker_threads = 1;
  std::uint64_t rx_ring_bytes = 4 * 1024 * 1024;  // per-core NIC ring
  kernel::KernelConfig kernel;
  bool use_fdir = false;
  const match::AhoCorasick* automaton = nullptr;  // enables matching
  bool deliver_packets = false;  // match per packet (needs kernel.need_pkts)
  /// When false, matching cycles are charged but the automaton is not
  /// actually run — for sweeps that only need the load, not match counts.
  bool count_matches = true;
  bool enable_cache_model = false;
  /// Packets buffered per softirq queue before entering the kernel through
  /// ScapKernel::handle_batch. 1 (the default) is behaviourally identical
  /// to per-packet ingest and keeps every published figure exact; larger
  /// batches amortize kernel entry for wall-clock throughput runs but defer
  /// event draining and the maintenance check to batch boundaries, which
  /// can shift virtual-time results under overload.
  int ingest_batch = 1;
};

class ScapPipeline {
 public:
  explicit ScapPipeline(ScapRunOptions options);

  /// Feed one packet (timestamps must be non-decreasing).
  void offer(const Packet& pkt);

  /// Flush streams, drain remaining events, finalize utilization.
  RunResult finish();

  kernel::ScapKernel& kernel() { return *kernel_; }

 private:
  void service_releases(Timestamp now);
  void drain_events(int core, Timestamp ready);
  /// Push queue q's pending packets through the kernel and charge their
  /// softirq/user cycles. No-op when nothing is pending.
  void flush_queue(int q);
  double softirq_cost(const kernel::PacketOutcome& out,
                      const Packet& pkt) const;

  ScapRunOptions opt_;
  nic::Nic nic_;
  std::unique_ptr<kernel::ScapKernel> kernel_;
  std::vector<sim::QueueServer> softirq_;
  std::vector<sim::QueueServer> user_;
  std::vector<std::vector<Packet>> pending_;       // per softirq queue
  std::vector<kernel::PacketOutcome> outcome_buf_;  // scratch for flushes
  struct Release {
    std::int64_t t_ns;
    std::uint64_t addr;
    std::uint32_t size;
    bool operator>(const Release& o) const { return t_ns > o.t_ns; }
  };
  std::priority_queue<Release, std::vector<Release>, std::greater<>> releases_;
  std::optional<CacheTracker> cache_;
  RunResult result_;
  Timestamp last_ts_;
};

// --- Baseline pipeline ---------------------------------------------------------

enum class BaselineKind { kLibnids, kStream5, kYaf };

struct BaselineRunOptions {
  sim::CostTable costs = sim::default_costs();
  BaselineKind kind = BaselineKind::kLibnids;
  int softirq_cores = 8;
  std::uint64_t rx_ring_bytes = 4 * 1024 * 1024;
  /// The paper configures a 512MB PF_PACKET ring over an hour-long replay;
  /// our replay windows are seconds, so the default is scaled down to keep
  /// the ring-fill-time : run-duration ratio comparable. Benches replaying
  /// long windows may restore 512MB.
  std::uint64_t capture_ring_bytes = 16ull * 1024 * 1024;
  std::int64_t cutoff_bytes = -1;   // modified-Stream5 / nids cutoff (Fig. 8)
  std::size_t max_flows = 1 << 20;
  std::uint32_t chunk_size = 16 * 1024;
  Duration inactivity_timeout = Duration::from_sec(10);
  const match::AhoCorasick* automaton = nullptr;
  bool count_matches = true;
  bool enable_cache_model = false;
};

class BaselinePipeline {
 public:
  explicit BaselinePipeline(BaselineRunOptions options);

  void offer(const Packet& pkt);
  RunResult finish();

  baseline::Engine& engine() { return *engine_; }

 private:
  BaselineRunOptions opt_;
  nic::Nic nic_;
  std::unique_ptr<baseline::Engine> engine_;
  std::vector<sim::QueueServer> softirq_;
  sim::QueueServer user_;
  std::optional<CacheTracker> cache_;
  RunResult result_;
  Timestamp last_ts_;
  std::uint64_t ring_cursor_ = 0;   // circular capture-ring address
  // Matching state accumulated inside the engine's chunk callback.
  std::uint64_t matched_bytes_pending_ = 0;
  std::uint64_t copy_baseline_ = 0;
  std::uint64_t delivered_baseline_ = 0;
  std::uint64_t cutoff_baseline_ = 0;
};

/// Convenience: replay a trace through a freshly-built pipeline.
RunResult run_scap(const flowgen::Trace& trace, double rate_gbps, int loops,
                   ScapRunOptions options);
RunResult run_baseline(const flowgen::Trace& trace, double rate_gbps,
                       int loops, BaselineRunOptions options);

}  // namespace scap::bench
