#include "bench/common/driver.hpp"

#include <algorithm>

namespace scap::bench {

// --- CacheTracker --------------------------------------------------------------

void CacheTracker::drain_until(Timestamp t) {
  while (!heap_.empty() && heap_.top().t_ns <= t.ns()) {
    const Access a = heap_.top();
    heap_.pop();
    cache_.access(a.addr, a.len);
  }
}

void CacheTracker::flush() {
  while (!heap_.empty()) {
    const Access a = heap_.top();
    heap_.pop();
    cache_.access(a.addr, a.len);
  }
}

std::uint64_t CacheTracker::stream_base(const FiveTuple& tuple) {
  const FiveTuple canon = tuple.canonical();
  std::uint64_t key = (static_cast<std::uint64_t>(canon.src_ip) << 32) ^
                      canon.dst_ip ^
                      (static_cast<std::uint64_t>(canon.src_port) << 16) ^
                      canon.dst_port;
  auto it = bases_.find(key);
  if (it != bases_.end()) return it->second;
  const std::uint64_t base = next_base_;
  next_base_ += 256 * 1024;  // one virtual buffer region per stream
  bases_.emplace(key, base);
  return base;
}

namespace {
constexpr std::uint64_t kStreamRegion = 256 * 1024;
}  // namespace

// --- ScapPipeline ----------------------------------------------------------------

ScapPipeline::ScapPipeline(ScapRunOptions options) : opt_(std::move(options)),
      nic_(opt_.softirq_cores) {
  opt_.kernel.num_cores = opt_.softirq_cores;
  opt_.kernel.use_fdir = opt_.use_fdir;
  kernel_ = std::make_unique<kernel::ScapKernel>(opt_.kernel, &nic_);
  for (int i = 0; i < opt_.softirq_cores; ++i) {
    softirq_.emplace_back(opt_.rx_ring_bytes, opt_.costs.core_hz);
  }
  const int workers = std::max(opt_.worker_threads, 1);
  for (int i = 0; i < workers; ++i) {
    user_.emplace_back(~0ull, opt_.costs.core_hz);
  }
  if (opt_.enable_cache_model) cache_.emplace();
  pending_.resize(static_cast<std::size_t>(opt_.softirq_cores));
}

void ScapPipeline::service_releases(Timestamp now) {
  while (!releases_.empty() && releases_.top().t_ns <= now.ns()) {
    const Release r = releases_.top();
    releases_.pop();
    kernel_->allocator().release(r.addr, r.size);
  }
}

double ScapPipeline::softirq_cost(const kernel::PacketOutcome& out,
                                  const Packet& pkt) const {
  const sim::CostTable& c = opt_.costs;
  double cycles = c.irq_per_packet;
  switch (out.verdict) {
    case kernel::Verdict::kStored:
      cycles += c.flow_update + c.scap_reassembly_per_packet +
                c.copy_per_byte * static_cast<double>(out.stored_bytes);
      break;
    case kernel::Verdict::kControl:
    case kernel::Verdict::kCutoffDiscard:
    case kernel::Verdict::kDupDiscard:
    case kernel::Verdict::kPplDrop:
    case kernel::Verdict::kNoMemDrop:
    case kernel::Verdict::kNoRecordDrop:
    case kernel::Verdict::kChecksumDrop:
    case kernel::Verdict::kIgnored:
    case kernel::Verdict::kFilteredBpf:
    case kernel::Verdict::kFragmentHeld:
    case kernel::Verdict::kBuffered:
      cycles += c.flow_update;
      break;
    case kernel::Verdict::kInvalid:
      break;
  }
  cycles += c.event_create * out.events;
  cycles += c.fdir_update * out.fdir_updates;
  (void)pkt;
  return cycles;
}

void ScapPipeline::drain_events(int core, Timestamp ready) {
  auto& evq = kernel_->events(core);
  const int workers = static_cast<int>(user_.size());
  while (!evq.empty()) {
    kernel::Event ev = evq.pop();
    const int w = core % workers;
    const sim::CostTable& c = opt_.costs;
    const std::uint64_t len = ev.chunk.data.size();
    double cycles = c.event_dispatch;
    if (ev.type == kernel::EventType::kData && len > 0) {
      cycles += c.user_touch_per_byte * static_cast<double>(len);
      if (opt_.automaton != nullptr) {
        cycles += c.match_per_byte * static_cast<double>(len);
        if (!opt_.count_matches) {
          // Load-only mode: cycles charged, no actual scan.
        } else if (opt_.deliver_packets && !ev.chunk.packets.empty()) {
          // Per-packet matching: patterns spanning packets are missed.
          for (const auto& rec : ev.chunk.packets) {
            if (rec.chunk_offset + rec.caplen > ev.chunk.data.size()) continue;
            result_.matches += opt_.automaton->scan(
                std::span<const std::uint8_t>(ev.chunk.data)
                    .subspan(rec.chunk_offset, rec.caplen));
          }
        } else {
          result_.matches +=
              opt_.automaton->scan(std::span<const std::uint8_t>(ev.chunk.data));
        }
      }
    }
    if (ev.type == kernel::EventType::kTerminated) {
      ++result_.streams_tracked;
      if (ev.stream.stats.captured_bytes > 0) ++result_.streams_with_data;
      const int p = std::clamp(ev.stream.params.priority, 0, 1);
      result_.prio_pkts[p] += ev.stream.stats.pkts;
      result_.prio_dropped[p] += ev.stream.stats.dropped_pkts;
    }
    user_[w].offer(ready, len, cycles);
    const Timestamp done = user_[w].last_completion();
    if (ev.chunk_alloc != 0) {
      releases_.push({done.ns(), ev.chunk_addr, ev.chunk_alloc});
    }
    if (cache_ && ev.type == kernel::EventType::kData && len > 0) {
      // Worker reads the chunk out of the shared stream buffer.
      const std::uint64_t base = cache_->stream_base(ev.stream.tuple);
      cache_->add(done, base + ev.chunk.stream_offset % kStreamRegion, len);
    }
  }
}

void ScapPipeline::offer(const Packet& pkt) {
  const Timestamp t = pkt.timestamp();
  last_ts_ = t;
  ++result_.pkts_offered;
  result_.bytes_offered += pkt.wire_len();
  service_releases(t);
  if (cache_) cache_->drain_until(t);

  const nic::RxResult rx = nic_.receive(pkt);
  if (rx.disposition == nic::RxDisposition::kDroppedByFilter) {
    ++result_.pkts_nic_filtered;
    return;  // subzero copy: the host never sees this packet
  }
  const int q = rx.queue;
  auto& soft = softirq_[q];
  if (soft.backlog_bytes(t) + pkt.wire_len() > opt_.rx_ring_bytes) {
    ++result_.pkts_dropped;  // RX descriptor ring overflow
    return;
  }
  pending_[static_cast<std::size_t>(q)].push_back(pkt);
  if (static_cast<int>(pending_[static_cast<std::size_t>(q)].size()) >=
      std::max(opt_.ingest_batch, 1)) {
    flush_queue(q);
  }
}

void ScapPipeline::flush_queue(int q) {
  auto& batch = pending_[static_cast<std::size_t>(q)];
  if (batch.empty()) return;
  auto& soft = softirq_[static_cast<std::size_t>(q)];
  outcome_buf_.resize(batch.size());
  kernel_->handle_batch(batch, batch.front().timestamp(), q,
                        {outcome_buf_.data(), outcome_buf_.size()});
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Packet& pkt = batch[i];
    const kernel::PacketOutcome& out = outcome_buf_[i];
    const Timestamp t = pkt.timestamp();
    const double soft_cycles = softirq_cost(out, pkt);
    soft.offer(t, pkt.wire_len(), soft_cycles);
    // The worker pinned to this core loses the cycles its colocated softirq
    // context consumed (the reason Fig. 10's speedup is sublinear).
    if (q < static_cast<int>(user_.size())) {
      user_[static_cast<std::size_t>(q)].charge(t, soft_cycles);
    }
    if (out.verdict == kernel::Verdict::kPplDrop ||
        out.verdict == kernel::Verdict::kNoMemDrop) {
      ++result_.pkts_dropped;
    }
    if (cache_ && out.stored_bytes > 0) {
      // Kernel writes the payload straight into the stream's buffer.
      const std::uint64_t base = cache_->stream_base(pkt.tuple());
      cache_->add(soft.last_completion(),
                  base + pkt.seq() % kStreamRegion, out.stored_bytes);
    }
  }
  batch.clear();
  drain_events(q, soft.last_completion());
}

RunResult ScapPipeline::finish() {
  for (int q = 0; q < opt_.softirq_cores; ++q) flush_queue(q);
  kernel_->terminate_all(last_ts_);
  for (int c = 0; c < opt_.softirq_cores; ++c) {
    const Timestamp ready =
        std::max(last_ts_, softirq_[static_cast<std::size_t>(c)].busy_until());
    drain_events(c, ready);
  }
  service_releases(Timestamp(std::numeric_limits<std::int64_t>::max()));
  if (cache_) {
    cache_->flush();
    result_.l2_misses = cache_->misses();
    result_.l2_misses_per_pkt =
        result_.pkts_offered
            ? static_cast<double>(result_.l2_misses) /
                  static_cast<double>(result_.pkts_offered)
            : 0.0;
  }

  const Timestamp horizon = last_ts_;
  result_.duration_sec = horizon.sec();
  // Application CPU excludes the colocated softirq load (the paper reports
  // the two separately).
  double user_busy = 0.0;
  for (auto& u : user_) user_busy += u.busy_cycles() - u.charged_cycles();
  const double user_capacity = static_cast<double>(user_.size()) *
                               opt_.costs.core_hz * horizon.sec();
  result_.cpu_user_pct =
      user_capacity > 0
          ? std::min(100.0, 100.0 * user_busy / user_capacity)
          : 0.0;
  double soft_busy = 0.0;
  for (auto& s : softirq_) soft_busy += s.busy_cycles();
  const double capacity = static_cast<double>(opt_.softirq_cores) *
                          opt_.costs.core_hz * horizon.sec();
  result_.softirq_pct = capacity > 0 ? 100.0 * soft_busy / capacity : 0.0;
  return result_;
}

// --- BaselinePipeline --------------------------------------------------------------

BaselinePipeline::BaselinePipeline(BaselineRunOptions options)
    : opt_(std::move(options)),
      nic_(opt_.softirq_cores),
      user_(opt_.capture_ring_bytes, opt_.costs.core_hz) {
  for (int i = 0; i < opt_.softirq_cores; ++i) {
    softirq_.emplace_back(opt_.rx_ring_bytes, opt_.costs.core_hz);
  }
  baseline::ChunkFn on_chunk = [this](const FiveTuple& tuple,
                                      std::span<const std::uint8_t> data) {
    matched_bytes_pending_ += data.size();
    if (opt_.automaton != nullptr && opt_.count_matches) {
      result_.matches += opt_.automaton->scan(data);
    }
    if (cache_) {
      // Reassembled chunk is read out of the per-stream buffer.
      const std::uint64_t base = cache_->stream_base(tuple);
      cache_->add(last_ts_, base, data.size());
    }
  };
  switch (opt_.kind) {
    case BaselineKind::kLibnids: {
      baseline::NidsConfig cfg;
      cfg.max_flows = opt_.max_flows;
      cfg.cutoff_bytes = opt_.cutoff_bytes;
      cfg.chunk_size = opt_.chunk_size;
      cfg.inactivity_timeout = opt_.inactivity_timeout;
      engine_ = std::make_unique<baseline::NidsEngine>(cfg, on_chunk);
      break;
    }
    case BaselineKind::kStream5: {
      baseline::Stream5Config cfg;
      cfg.max_flows = opt_.max_flows;
      cfg.cutoff_bytes = opt_.cutoff_bytes;
      cfg.chunk_size = opt_.chunk_size;
      cfg.inactivity_timeout = opt_.inactivity_timeout;
      engine_ = std::make_unique<baseline::Stream5Engine>(cfg, on_chunk);
      break;
    }
    case BaselineKind::kYaf: {
      engine_ = std::make_unique<baseline::YafEngine>(baseline::YafConfig{},
                                                      nullptr);
      break;
    }
  }
  if (opt_.enable_cache_model) cache_.emplace();
}

void BaselinePipeline::offer(const Packet& pkt) {
  const Timestamp t = pkt.timestamp();
  last_ts_ = t;
  ++result_.pkts_offered;
  result_.bytes_offered += pkt.wire_len();
  if (cache_) cache_->drain_until(t);

  const nic::RxResult rx = nic_.receive(pkt);
  const int q = rx.queue;
  auto& soft = softirq_[q];
  if (soft.backlog_bytes(t) + pkt.wire_len() > opt_.rx_ring_bytes) {
    ++result_.pkts_dropped;
    return;
  }

  const std::uint32_t snaplen = engine_->snaplen();
  const Packet captured =
      snaplen != 0 && pkt.capture_len() > snaplen ? pkt.snapped(snaplen) : pkt;
  const std::uint32_t caplen = captured.capture_len();

  // Is there room in the shared capture ring? If not, the kernel drops the
  // packet after the interrupt but before the copy (PF_PACKET behaviour).
  const bool ring_ok =
      user_.backlog_bytes(t) + caplen <= opt_.capture_ring_bytes;
  const sim::CostTable& c = opt_.costs;
  const double soft_cycles =
      c.irq_per_packet +
      (ring_ok ? c.ring_copy_per_byte * static_cast<double>(caplen) : 0.0);
  soft.offer(t, pkt.wire_len(), soft_cycles);
  // The single application thread shares core 0 with that core's softirq.
  if (q == 0) user_.charge(t, soft_cycles);
  const Timestamp tdone = soft.last_completion();
  if (!ring_ok) {
    ++result_.pkts_dropped;
    return;
  }
  if (cache_) {
    // Softirq writes the frame into the circular capture ring.
    cache_->add(tdone, ring_cursor_, caplen);
  }

  // User stage: engine processes the packet functionally; costs follow
  // from what it actually did.
  const baseline::EngineStats& st = engine_->stats();
  const std::uint64_t copy_before = st.copy_bytes;
  const std::uint64_t cutoff_before = st.pkts_discarded_cutoff;
  matched_bytes_pending_ = 0;
  engine_->on_packet(captured, t);
  const std::uint64_t copied = st.copy_bytes - copy_before;
  const bool cutoff_discarded = st.pkts_discarded_cutoff != cutoff_before;

  double cycles = c.pcap_deliver_per_packet;
  switch (opt_.kind) {
    case BaselineKind::kYaf:
      cycles += c.yaf_flow_update +
                c.user_touch_per_byte * static_cast<double>(caplen);
      break;
    case BaselineKind::kLibnids:
      cycles += c.flow_update + c.nids_reassembly_per_packet;
      break;
    case BaselineKind::kStream5:
      cycles += c.flow_update + c.stream5_reassembly_per_packet;
      break;
  }
  if (!cutoff_discarded) {
    cycles += c.copy_per_byte * static_cast<double>(copied);
  }
  if (opt_.automaton != nullptr && matched_bytes_pending_ > 0) {
    cycles +=
        c.match_per_byte * static_cast<double>(matched_bytes_pending_);
  }
  user_.offer(tdone, caplen, cycles);

  if (cache_) {
    const Timestamp udone = user_.last_completion();
    // User stage reads the frame back out of the ring...
    cache_->add(udone, ring_cursor_, caplen);
    // ...and copies the payload into the per-stream reassembly buffer.
    if (copied > 0) {
      const std::uint64_t base = cache_->stream_base(pkt.tuple());
      cache_->add(udone, base + pkt.seq() % kStreamRegion, copied);
    }
  }
  ring_cursor_ = (ring_cursor_ + caplen) % opt_.capture_ring_bytes;
}

RunResult BaselinePipeline::finish() {
  matched_bytes_pending_ = 0;
  engine_->finish(last_ts_);
  if (opt_.automaton != nullptr && matched_bytes_pending_ > 0) {
    user_.offer(last_ts_, 0,
                opt_.costs.match_per_byte *
                    static_cast<double>(matched_bytes_pending_));
  }
  if (cache_) {
    cache_->flush();
    result_.l2_misses = cache_->misses();
    result_.l2_misses_per_pkt =
        result_.pkts_offered
            ? static_cast<double>(result_.l2_misses) /
                  static_cast<double>(result_.pkts_offered)
            : 0.0;
  }
  const baseline::EngineStats& st = engine_->stats();
  result_.streams_tracked = st.streams_tracked;
  result_.streams_with_data = st.streams_with_data;

  const Timestamp horizon = last_ts_;
  result_.duration_sec = horizon.sec();
  const double user_capacity = opt_.costs.core_hz * horizon.sec();
  result_.cpu_user_pct =
      user_capacity > 0
          ? std::min(100.0, 100.0 *
                                (user_.busy_cycles() - user_.charged_cycles()) /
                                user_capacity)
          : 0.0;
  double soft_busy = 0.0;
  for (auto& s : softirq_) soft_busy += s.busy_cycles();
  const double capacity = static_cast<double>(opt_.softirq_cores) *
                          opt_.costs.core_hz * horizon.sec();
  result_.softirq_pct = capacity > 0 ? 100.0 * soft_busy / capacity : 0.0;
  return result_;
}

// --- Convenience runners --------------------------------------------------------

RunResult run_scap(const flowgen::Trace& trace, double rate_gbps, int loops,
                   ScapRunOptions options) {
  ScapPipeline pipe(std::move(options));
  flowgen::Replayer replayer(trace, rate_gbps, loops);
  replayer.for_each([&](const Packet& pkt) { pipe.offer(pkt); });
  return pipe.finish();
}

RunResult run_baseline(const flowgen::Trace& trace, double rate_gbps,
                       int loops, BaselineRunOptions options) {
  BaselinePipeline pipe(std::move(options));
  flowgen::Replayer replayer(trace, rate_gbps, loops);
  replayer.for_each([&](const Packet& pkt) { pipe.offer(pkt); });
  return pipe.finish();
}

}  // namespace scap::bench
