// Tabular output helpers for the figure-reproduction benches. Each bench
// prints one CSV-style block per figure panel so results can be compared
// against the paper (and re-plotted) directly.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace scap::bench {

class Table {
 public:
  explicit Table(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  void row(const std::vector<double>& values) { rows_.push_back(values); }

  void print() const {
    std::printf("\n== %s ==\n", title_.c_str());
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%s%s", i ? "," : "", columns_[i].c_str());
    }
    std::printf("\n");
    for (const auto& r : rows_) {
      for (std::size_t i = 0; i < r.size(); ++i) {
        std::printf("%s%.4g", i ? "," : "", r[i]);
      }
      std::printf("\n");
    }
  }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

/// Environment-tunable experiment scale: SCAP_BENCH_SCALE=small|full.
inline bool full_scale() {
  const char* v = std::getenv("SCAP_BENCH_SCALE");
  return v != nullptr && std::string(v) == "full";
}

}  // namespace scap::bench
