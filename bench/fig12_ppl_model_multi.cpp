// Figure 12: analytic loss for the three-priority PPL chain (paper §7).
//
// 2N-state birth-death chain: medium+high arrivals (λ1+λ2) drive states
// 0..N, only high-priority arrivals (λ2) drive states N..2N. Plots the
// high- and medium-priority loss probabilities for ρ1 = ρ2 = 0.3, and
// cross-checks the closed forms against the numeric chain solver.
#include <cmath>
#include <cstdio>

#include "analysis/queueing.hpp"
#include "bench/common/report.hpp"

using namespace scap;
using namespace scap::bench;

int main() {
  Table t("Fig 12 loss probability vs N (rho1 = rho2 = 0.3)",
          {"N", "medium_priority", "high_priority"});
  for (int n = 1; n <= 40; ++n) {
    auto loss = analysis::two_level_loss(0.3, 0.3, n);
    t.row({static_cast<double>(n), loss.medium, loss.high});
  }
  t.print();

  // Numeric cross-check of the closed forms.
  double max_err = 0.0;
  for (int n : {2, 5, 10, 20, 40}) {
    std::vector<double> lambda;
    for (int i = 0; i < n; ++i) lambda.push_back(0.3);
    for (int i = 0; i < n; ++i) lambda.push_back(0.3);
    auto pi = analysis::birth_death_stationary(lambda, 1.0);
    auto loss = analysis::two_level_loss(0.3, 0.3, n);
    double tail = 0.0;
    for (std::size_t k = static_cast<std::size_t>(n); k < pi.size(); ++k) {
      tail += pi[k];
    }
    max_err = std::max(max_err, std::abs(loss.high - pi.back()));
    max_err = std::max(max_err, std::abs(loss.medium - tail));
  }
  std::printf("\n[check] closed forms vs numeric chain solver: max abs error "
              "%.3g\n",
              max_err);
  return 0;
}
