// Ablation: chunk size (paper §3.1 exposes it; never swept in the paper).
//
// Small chunks mean finer memory granularity and timelier delivery but more
// event-dispatch overhead per byte; large chunks amortize events but hold
// memory longer and delay processing. The paper uses 16KB everywhere; this
// sweep shows why that is a sweet spot for the matching workload.
#include <cstdio>

#include "bench/common/driver.hpp"
#include "bench/common/workloads.hpp"

using namespace scap;
using namespace scap::bench;

int main() {
  const flowgen::Trace& trace = campus_trace();
  const int loops = 3;
  const double rate = 2.0;  // past one worker's matching capacity

  Table t("Ablation: chunk size @2Gbit/s, 1 worker, pattern matching",
          {"chunk_bytes", "drop_pct", "cpu_pct", "events_per_mb",
           "matched_pct"});
  const double planted = static_cast<double>(trace.planted_matches) * loops;

  for (std::uint32_t chunk : {1024u, 4096u, 16384u, 65536u, 262144u}) {
    ScapRunOptions opt;
    opt.kernel.memory_size = 64ull << 20;
    opt.kernel.creation_events = false;
    opt.kernel.defaults.chunk_size = chunk;
    opt.kernel.ppl.base_threshold = 0.5;
    opt.kernel.ppl.overload_cutoff = 16 * 1024;
    opt.automaton = &vrt_automaton();
    ScapPipeline pipe(opt);
    flowgen::Replayer replayer(trace, rate, loops);
    replayer.for_each([&](const Packet& pkt) { pipe.offer(pkt); });
    const std::uint64_t events = pipe.kernel().stats().events_emitted;
    RunResult r = pipe.finish();
    t.row({static_cast<double>(chunk), r.drop_pct(), r.cpu_user_pct,
           static_cast<double>(events) /
               (static_cast<double>(r.bytes_offered) / 1e6),
           planted > 0
               ? 100.0 * static_cast<double>(r.matches) / planted
               : 0.0});
  }
  t.print();
  return 0;
}
