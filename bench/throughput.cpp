// Wall-clock throughput harness for the fast path (open-addressing flow
// table + slab-allocated records + batched ingest).
//
// Unlike the fig* benches, which measure *simulated* cycle budgets, this
// harness measures real packets/second of the implementation itself on
// three workloads:
//
//   flow_lookup  — N established streams past their cutoff, hit round-robin
//                  with data packets: pure find/touch/discard, the
//                  flow-lookup-dominated path. Steady state must perform
//                  ZERO heap allocations per packet (asserted).
//   reassembly   — a flowgen campus-like trace (SYN/data/FIN churn, payload
//                  chunking) pushed straight into ScapKernel in batches.
//   pipeline     — the same trace through the full ScapPipeline simulation
//                  driver with ingest_batch = 32.
//
// Results go to stdout and to a machine-readable JSON file (default
// BENCH_throughput.json) consumed by bench/compare_bench.py.
//
// Compiling with -DSCAP_SEED_BASELINE builds the same harness against the
// pre-batching kernel API (per-packet handle_packet, no ingest_batch) so
// before/after numbers come from identical measurement code.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "bench/common/driver.hpp"
#include "flowgen/replay.hpp"
#include "flowgen/workload.hpp"
#include "kernel/module.hpp"
#include "packet/craft.hpp"
#ifndef SCAP_SEED_BASELINE
#include "base/mutex.hpp"
#include "kernel/shard.hpp"
#include "scap/capture.hpp"
#include "trace/trace.hpp"
#endif

// --- Allocation counter ------------------------------------------------------
// Counts every operator-new in the process; workloads sample it around their
// timed region. Only the delta matters, so background noise before/after the
// region is irrelevant.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
// The replacement operator-new family above is malloc/aligned_alloc backed,
// so free() is the correct deallocator for every pointer reaching these —
// GCC's pairing heuristic cannot see that and flags inlined call sites.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace scap::bench {
namespace {

constexpr std::size_t kBatch = 32;

struct WorkloadResult {
  std::string name;
  std::uint64_t packets = 0;
  double seconds = 0.0;
  std::uint64_t allocs = 0;
  std::uint64_t pool_recycled = 0;
  int workers = 0;          // 0 = single-threaded (inline) workload
  double efficiency = 0.0;  // pps / (workers * pps@1worker); 0 when n/a

  double pps() const {
    return seconds > 0 ? static_cast<double>(packets) / seconds : 0.0;
  }
  double per_worker_pps() const {
    return workers > 0 ? pps() / workers : pps();
  }
  double ns_per_pkt() const {
    return packets ? seconds * 1e9 / static_cast<double>(packets) : 0.0;
  }
  double allocs_per_pkt() const {
    return packets ? static_cast<double>(allocs) / static_cast<double>(packets)
                   : 0.0;
  }
};

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Feed a contiguous packet vector into the kernel in kBatch-sized spans.
kernel::PacketOutcome ingest(kernel::ScapKernel& k,
                             std::span<const Packet> pkts, int core) {
  kernel::PacketOutcome out;
#ifdef SCAP_SEED_BASELINE
  for (const Packet& p : pkts) out = k.handle_packet(p, p.timestamp(), core);
#else
  for (std::size_t i = 0; i < pkts.size(); i += kBatch) {
    out = k.handle_batch(pkts.subspan(i, std::min(kBatch, pkts.size() - i)),
                         pkts[i].timestamp(), core);
  }
#endif
  return out;
}

void drain(kernel::ScapKernel& k, int core) {
  auto& q = k.events(core);
  while (!q.empty()) {
    kernel::Event ev = q.pop();
    k.release_chunk(ev);
  }
}

// --- flow_lookup -------------------------------------------------------------

WorkloadResult run_flow_lookup(bool& zero_alloc_ok) {
  constexpr std::size_t kFlows = 4096;
  constexpr std::size_t kRounds = 8;    // packets per flow per replay pass
  constexpr int kReps = 128;            // timed passes over the packet vector

  kernel::KernelConfig cfg;
  cfg.max_streams = kFlows * 2;
  cfg.defaults.cutoff_bytes = 64;  // everything past 64B is kernel-discarded
  kernel::ScapKernel k(cfg);

  std::vector<std::uint8_t> payload(512, 0xab);
  const Timestamp t0(0);

  // Establish kFlows streams and push each past its cutoff.
  std::vector<FiveTuple> tuples(kFlows);
  for (std::size_t i = 0; i < kFlows; ++i) {
    FiveTuple& tup = tuples[i];
    tup.src_ip = 0x0a000000u + static_cast<std::uint32_t>(i);
    tup.dst_ip = 0xc0a80001u;
    tup.src_port = 40000;
    tup.dst_port = 80;
    tup.protocol = kProtoTcp;
    TcpSegmentSpec syn{.tuple = tup, .seq = 0, .flags = kTcpSyn};
    k.handle_packet(make_tcp_packet(syn, t0), t0, 0);
    TcpSegmentSpec d0{.tuple = tup, .seq = 1, .payload = payload};
    k.handle_packet(make_tcp_packet(d0, t0), t0, 0);
    TcpSegmentSpec d1{.tuple = tup, .seq = 513, .payload = payload};
    k.handle_packet(make_tcp_packet(d1, t0), t0, 0);  // past cutoff now
  }
  drain(k, 0);

  // One steady-state packet template, stamped per flow without any frame
  // allocation (the frame buffer is shared).
  TcpSegmentSpec steady{.tuple = tuples[0], .seq = 4096, .payload = payload};
  const Packet tmpl = make_tcp_packet(steady, t0);
  std::vector<Packet> pkts;
  pkts.reserve(kFlows * kRounds);
  for (std::size_t r = 0; r < kRounds; ++r) {
    for (std::size_t i = 0; i < kFlows; ++i) {
      pkts.push_back(tmpl.with_flow(tuples[i], 4096, t0));
    }
  }

  ingest(k, pkts, 0);  // warmup pass (grows any remaining lazy state)
  drain(k, 0);

  const std::uint64_t allocs_before = g_allocs.load();
  const double start = now_sec();
  for (int rep = 0; rep < kReps; ++rep) ingest(k, pkts, 0);
  const double elapsed = now_sec() - start;
  const std::uint64_t allocs = g_allocs.load() - allocs_before;

  WorkloadResult r;
  r.name = "flow_lookup";
  r.packets = static_cast<std::uint64_t>(pkts.size()) * kReps;
  r.seconds = elapsed;
  r.allocs = allocs;
  zero_alloc_ok = allocs == 0;
  return r;
}

// --- reassembly --------------------------------------------------------------

// With `traced`, a Tracer is attached before the first packet, so every
// instrumentation site in the batch path takes its branch+store. Comparing
// the two runs prices the observability layer (trace-on overhead);
// comparing the untraced run against the checked-in baseline via
// compare_bench.py prices the instrumentation itself (trace-off overhead,
// the <=2% acceptance gate).
WorkloadResult run_reassembly(const flowgen::Trace& trace, bool traced) {
  kernel::KernelConfig cfg;
  cfg.max_streams = 1 << 16;
  kernel::ScapKernel k(cfg);
#ifndef SCAP_SEED_BASELINE
  trace::Tracer tracer(trace::TraceConfig{.ring_capacity = 1 << 14,
                                          .cores = 1});
  if (traced) k.set_tracer(&tracer);
#else
  (void)traced;
#endif

  // Warmup: one untimed pass grows the record pool, chunk vectors, and event
  // deque to steady-state capacity.
  ingest(k, trace.packets, 0);
  drain(k, 0);

  constexpr int kLoops = 4;
  const std::uint64_t allocs_before = g_allocs.load();
  const double start = now_sec();
  for (int loop = 0; loop < kLoops; ++loop) {
    for (std::size_t i = 0; i < trace.packets.size(); i += kBatch) {
      ingest(k,
             std::span<const Packet>(trace.packets)
                 .subspan(i, std::min(kBatch, trace.packets.size() - i)),
             0);
      drain(k, 0);
    }
  }
  const double elapsed = now_sec() - start;

  WorkloadResult r;
  r.name = traced ? "reassembly_traced" : "reassembly";
  r.packets = static_cast<std::uint64_t>(trace.packets.size()) * kLoops;
  r.seconds = elapsed;
  r.allocs = g_allocs.load() - allocs_before;
#ifndef SCAP_SEED_BASELINE
  r.pool_recycled = k.stats().pool_recycled;
#endif
  return r;
}

// --- pipeline ----------------------------------------------------------------

WorkloadResult run_pipeline(const flowgen::Trace& trace) {
  ScapRunOptions opt;
  opt.softirq_cores = 4;
#ifndef SCAP_SEED_BASELINE
  opt.ingest_batch = static_cast<int>(kBatch);
#endif
  const std::uint64_t allocs_before = g_allocs.load();
  const double start = now_sec();
  const RunResult res = run_scap(trace, /*rate_gbps=*/2.0, /*loops=*/2, opt);
  const double elapsed = now_sec() - start;

  WorkloadResult r;
  r.name = "pipeline";
  r.packets = res.pkts_offered;
  r.seconds = elapsed;
  r.allocs = g_allocs.load() - allocs_before;
  return r;
}

#ifndef SCAP_SEED_BASELINE

// --- flow_lookup_mc ----------------------------------------------------------
// The flow-lookup workload through the sharded datapath: one producer
// steers pre-bucketed packets onto per-shard SPSC rings, N worker threads
// run find/touch/discard on their private kernels. The 1-worker point
// prices the ring handoff against the inline flow_lookup number; the
// 2/4/8-worker points measure scaling (meaningful only with enough
// hardware cores — compare_bench.py gates the 4-worker speedup when the
// machine has them).

WorkloadResult run_flow_lookup_mc(int workers) {
  constexpr std::size_t kFlows = 4096;
  constexpr std::size_t kRounds = 8;
  constexpr int kReps = 16;

  kernel::KernelConfig cfg;
  cfg.max_streams = kFlows * 4;  // headroom: RSS spreads flows unevenly
  cfg.defaults.cutoff_bytes = 64;
  kernel::KernelShards::Options sopts;
  sopts.ring_capacity = 4096;
  sopts.batch_size = kBatch;
  kernel::KernelShards shards(cfg, workers, sopts);

  base::SerialGuard prod(shards.producer());
  shards.start({});  // self-drain: discard verdicts emit no events anyway

  std::vector<std::uint8_t> payload(512, 0xab);
  const Timestamp t0(0);
  std::vector<FiveTuple> tuples(kFlows);
  for (std::size_t i = 0; i < kFlows; ++i) {
    FiveTuple& tup = tuples[i];
    tup.src_ip = 0x0a000000u + static_cast<std::uint32_t>(i);
    tup.dst_ip = 0xc0a80001u;
    tup.src_port = 40000;
    tup.dst_port = 80;
    tup.protocol = kProtoTcp;
    TcpSegmentSpec syn{.tuple = tup, .seq = 0, .flags = kTcpSyn};
    shards.submit(make_tcp_packet(syn, t0));
    TcpSegmentSpec d0{.tuple = tup, .seq = 1, .payload = payload};
    shards.submit(make_tcp_packet(d0, t0));
    TcpSegmentSpec d1{.tuple = tup, .seq = 513, .payload = payload};
    shards.submit(make_tcp_packet(d1, t0));  // past cutoff now
  }
  shards.flush();

  // Steady-state packets, pre-bucketed by shard so the timed region pays
  // only the ring push (the Toeplitz steer is priced by pipeline_mc).
  TcpSegmentSpec steady{.tuple = tuples[0], .seq = 4096, .payload = payload};
  const Packet tmpl = make_tcp_packet(steady, t0);
  std::vector<std::vector<Packet>> buckets(
      static_cast<std::size_t>(workers));
  for (std::size_t r = 0; r < kRounds; ++r) {
    for (std::size_t i = 0; i < kFlows; ++i) {
      const Packet pkt = tmpl.with_flow(tuples[i], 4096, t0);
      buckets[static_cast<std::size_t>(shards.shard_for(pkt))].push_back(pkt);
    }
  }
  std::size_t per_rep = 0;
  std::size_t max_len = 0;
  for (const auto& b : buckets) {
    per_rep += b.size();
    max_len = std::max(max_len, b.size());
  }

  // Warmup pass, then timed reps. Submissions interleave round-robin over
  // the shards so every ring stays busy; flush() inside the timed region
  // charges the drain to the measurement.
  for (std::size_t pos = 0; pos < max_len; ++pos) {
    for (std::size_t s = 0; s < buckets.size(); ++s) {
      if (pos < buckets[s].size()) {
        shards.submit_to(static_cast<int>(s), buckets[s][pos]);
      }
    }
  }
  shards.flush();

  const std::uint64_t allocs_before = g_allocs.load();
  const double start = now_sec();
  for (int rep = 0; rep < kReps; ++rep) {
    for (std::size_t pos = 0; pos < max_len; ++pos) {
      for (std::size_t s = 0; s < buckets.size(); ++s) {
        if (pos < buckets[s].size()) {
          shards.submit_to(static_cast<int>(s), buckets[s][pos]);
        }
      }
    }
  }
  shards.flush();
  const double elapsed = now_sec() - start;
  const std::uint64_t allocs = g_allocs.load() - allocs_before;
  shards.stop(t0);

  WorkloadResult r;
  r.name = "flow_lookup_mc_w" + std::to_string(workers);
  r.workers = workers;
  r.packets = static_cast<std::uint64_t>(per_rep) * kReps;
  r.seconds = elapsed;
  r.allocs = allocs;
  return r;
}

// --- pipeline_mc -------------------------------------------------------------
// The full capture path end to end with worker threads: NIC classification
// and RSS steering on the producer, reassembly + event dispatch on the
// shard workers. This is the configuration the paper's Figure 10 models.

WorkloadResult run_pipeline_mc(const flowgen::Trace& trace, int workers) {
  constexpr int kLoops = 2;
  Capture cap("bench-mc", 256ull << 20, kernel::ReassemblyMode::kTcpFast,
              /*need_pkts=*/false);
  cap.set_worker_threads(workers);
  std::atomic<std::uint64_t> bytes{0};
  cap.dispatch_data([&bytes](StreamView& sd) {
    bytes.fetch_add(sd.data_len(), std::memory_order_relaxed);
  });
  cap.start();

  // Warmup loop grows slabs and event deques to steady state.
  for (std::size_t i = 0; i < trace.packets.size(); i += kBatch) {
    cap.inject_batch(std::span<const Packet>(trace.packets)
                         .subspan(i, std::min(kBatch,
                                              trace.packets.size() - i)));
  }

  const std::uint64_t allocs_before = g_allocs.load();
  const double start = now_sec();
  for (int loop = 0; loop < kLoops; ++loop) {
    for (std::size_t i = 0; i < trace.packets.size(); i += kBatch) {
      cap.inject_batch(std::span<const Packet>(trace.packets)
                           .subspan(i, std::min(kBatch,
                                                trace.packets.size() - i)));
    }
  }
  cap.stop();  // flush + worker join belong to the measured interval
  const double elapsed = now_sec() - start;

  WorkloadResult r;
  r.name = "pipeline_mc_w" + std::to_string(workers);
  r.workers = workers;
  r.packets = static_cast<std::uint64_t>(trace.packets.size()) * kLoops;
  r.seconds = elapsed;
  r.allocs = g_allocs.load() - allocs_before;
  return r;
}

#endif  // !SCAP_SEED_BASELINE

// --- output ------------------------------------------------------------------

void write_json(const std::string& path, std::uint64_t seed,
                const std::vector<WorkloadResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "throughput: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"seed\": %llu,\n  \"workloads\": [\n",
               static_cast<unsigned long long>(seed));
  for (std::size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"packets\": %llu, \"seconds\": %.6f, "
        "\"pps\": %.1f, \"ns_per_pkt\": %.2f, \"allocs\": %llu, "
        "\"allocs_per_pkt\": %.6f, \"pool_recycled\": %llu, "
        "\"workers\": %d, \"pps_per_worker\": %.1f, "
        "\"efficiency\": %.4f}%s\n",
        r.name.c_str(), static_cast<unsigned long long>(r.packets), r.seconds,
        r.pps(), r.ns_per_pkt(), static_cast<unsigned long long>(r.allocs),
        r.allocs_per_pkt(), static_cast<unsigned long long>(r.pool_recycled),
        r.workers, r.per_worker_pps(), r.efficiency,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace scap::bench

int main(int argc, char** argv) {
  using namespace scap;
  using namespace scap::bench;

  std::string out_path = "BENCH_throughput.json";
  std::uint64_t seed = 2013;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: throughput [--out=FILE.json] [--seed=N]\n");
      return 2;
    }
  }

  flowgen::WorkloadConfig cfg;
  cfg.flows = 2500;
  cfg.seed = seed;
  const flowgen::Trace trace = flowgen::build_trace(cfg);

  std::vector<WorkloadResult> results;
  bool zero_alloc_ok = false;
  results.push_back(run_flow_lookup(zero_alloc_ok));
  results.push_back(run_reassembly(trace, /*traced=*/false));
#ifndef SCAP_SEED_BASELINE
  results.push_back(run_reassembly(trace, /*traced=*/true));
#endif
  results.push_back(run_pipeline(trace));

#ifndef SCAP_SEED_BASELINE
  // Multi-core sweep: each worker count re-runs the workload on a fresh
  // sharded datapath; efficiency is pps relative to perfect scaling of the
  // family's own 1-worker point.
  static constexpr int kWorkerSweep[] = {1, 2, 4, 8};
  auto sweep = [&results](const char* family, auto&& run) {
    double base_pps = 0.0;
    for (int workers : kWorkerSweep) {
      WorkloadResult r = run(workers);
      if (workers == 1) base_pps = r.pps();
      if (base_pps > 0) r.efficiency = r.pps() / (workers * base_pps);
      results.push_back(std::move(r));
      (void)family;
    }
  };
  sweep("flow_lookup_mc", [](int w) { return run_flow_lookup_mc(w); });
  sweep("pipeline_mc",
        [&trace](int w) { return run_pipeline_mc(trace, w); });
#endif

  std::printf("workload,packets,seconds,pps,ns_per_pkt,allocs_per_pkt\n");
  for (const WorkloadResult& r : results) {
    if (r.workers > 0) continue;
    std::printf("%s,%llu,%.4f,%.0f,%.2f,%.6f\n", r.name.c_str(),
                static_cast<unsigned long long>(r.packets), r.seconds, r.pps(),
                r.ns_per_pkt(), r.allocs_per_pkt());
  }
  std::printf(
      "\nmc_workload,workers,packets,seconds,total_pps,per_worker_pps,"
      "efficiency\n");
  for (const WorkloadResult& r : results) {
    if (r.workers == 0) continue;
    std::printf("%s,%d,%llu,%.4f,%.0f,%.0f,%.3f\n", r.name.c_str(), r.workers,
                static_cast<unsigned long long>(r.packets), r.seconds, r.pps(),
                r.per_worker_pps(), r.efficiency);
  }
  write_json(out_path, seed, results);

  // Trace-on overhead: reassembly with a live tracer vs without one.
  const WorkloadResult* plain = nullptr;
  const WorkloadResult* traced = nullptr;
  for (const WorkloadResult& r : results) {
    if (r.name == "reassembly") plain = &r;
    if (r.name == "reassembly_traced") traced = &r;
  }
  if (plain != nullptr && traced != nullptr && plain->ns_per_pkt() > 0) {
    std::printf("trace_on_overhead_pct=%.2f\n",
                (traced->ns_per_pkt() / plain->ns_per_pkt() - 1.0) * 100.0);
  }

  if (!zero_alloc_ok) {
    std::fprintf(stderr,
                 "throughput: FAIL — flow_lookup steady state performed heap "
                 "allocations (expected zero)\n");
#ifndef SCAP_SEED_BASELINE
    return 1;
#endif
  }
  return 0;
}
