// Figure 9: prioritized packet loss under overload (paper §6.7).
//
// The single-worker pattern-matching application declares one high-priority
// stream class (a minority of the traffic, like the paper's port-80 8.4%);
// everything else is low priority. As the rate climbs past what one worker
// can match, PPL sheds low-priority packets first.
//
// Paper's headline: zero high-priority loss up to 5.5 Gbit/s while
// low-priority loss reaches ~86%; at 6 Gbit/s a small 2.3% high-priority
// loss appears.
#include <cstdio>

#include "bench/common/driver.hpp"
#include "bench/common/workloads.hpp"

using namespace scap;
using namespace scap::bench;

int main() {
  const flowgen::Trace& trace = campus_trace();
  const int loops = 3;

  Table drops("Fig 9 packet loss (%) by priority vs rate (Gbit/s)",
              {"rate", "low_priority", "high_priority"});

  for (double rate : rate_sweep()) {
    ScapRunOptions scap;
    scap.kernel.memory_size = 64ull << 20;
    scap.kernel.creation_events = false;
    scap.kernel.ppl.base_threshold = 0.5;
    scap.kernel.ppl.priority_levels = 2;
    kernel::PriorityClass high;
    high.filter = BpfProgram::compile("port 25 or port 22");
    high.priority = 1;
    scap.kernel.priority_classes.push_back(std::move(high));
    scap.automaton = &vrt_automaton();
    scap.count_matches = false;
    RunResult r = run_scap(trace, rate, loops, scap);

    auto pct = [](std::uint64_t dropped, std::uint64_t total) {
      return total ? 100.0 * static_cast<double>(dropped) /
                         static_cast<double>(total)
                   : 0.0;
    };
    drops.row({rate, pct(r.prio_dropped[0], r.prio_pkts[0]),
               pct(r.prio_dropped[1], r.prio_pkts[1])});
  }
  drops.print();
  return 0;
}
