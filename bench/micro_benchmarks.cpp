// Microbenchmarks of the datapath hot paths (google-benchmark).
//
// These measure the REAL implementation cost on the build machine —
// complementary to the cycle model in src/sim/costs.hpp, and the place to
// check that a change didn't regress the per-packet path.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "base/hash.hpp"
#include "kernel/module.hpp"
#include "kernel/reassembly.hpp"
#include "match/aho_corasick.hpp"
#include "match/corpus.hpp"
#include "nic/rss.hpp"
#include "packet/craft.hpp"

namespace {

using namespace scap;

void BM_PacketDecode(benchmark::State& state) {
  TcpSegmentSpec spec;
  spec.tuple = {0x0a000001, 0x0a000002, 40000, 80, kProtoTcp};
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(state.range(0)),
                                    0x61);
  spec.payload = payload;
  auto frame = std::make_shared<const std::vector<std::uint8_t>>(
      build_tcp_frame(spec));
  for (auto _ : state) {
    Packet p = Packet::decode(frame, Timestamp(0));
    benchmark::DoNotOptimize(p);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * frame->size());
}
BENCHMARK(BM_PacketDecode)->Arg(64)->Arg(1460);

void BM_ToeplitzHash(benchmark::State& state) {
  const RssKey key = symmetric_rss_key();
  std::uint8_t input[12] = {10, 0, 0, 1, 10, 0, 0, 2, 0x9c, 0x40, 0, 80};
  for (auto _ : state) {
    benchmark::DoNotOptimize(toeplitz_hash(key, input));
    input[3]++;
  }
}
BENCHMARK(BM_ToeplitzHash);

void BM_TcpReassemblyInOrder(benchmark::State& state) {
  const std::size_t seg = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> payload(seg, 0x62);
  kernel::StreamParams params;
  params.chunk_size = 16 * 1024;
  for (auto _ : state) {
    state.PauseTiming();
    kernel::TcpReassembler r(params, false);
    r.on_syn(0);
    state.ResumeTiming();
    std::uint32_t s = 1;
    for (int i = 0; i < 64; ++i) {
      kernel::SegmentMeta meta;
      auto res = r.on_data(s, payload, meta);
      benchmark::DoNotOptimize(res.accepted_bytes);
      s += static_cast<std::uint32_t>(seg);
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64 *
                          static_cast<std::int64_t>(seg));
}
BENCHMARK(BM_TcpReassemblyInOrder)->Arg(512)->Arg(1460);

void BM_AhoCorasickScan(benchmark::State& state) {
  static const match::AhoCorasick ac(
      match::make_corpus({.pattern_count = 2120}));
  std::vector<std::uint8_t> data(16 * 1024);
  Rng rng(5);
  for (auto& b : data) {
    b = static_cast<std::uint8_t>('a' + rng.bounded(26));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ac.scan(data));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * data.size()));
}
BENCHMARK(BM_AhoCorasickScan);

void BM_KernelHandlePacket(benchmark::State& state) {
  kernel::KernelConfig cfg;
  cfg.memory_size = 1ull << 30;
  cfg.creation_events = false;
  kernel::ScapKernel k(cfg);

  TcpSegmentSpec syn;
  syn.tuple = {0x0a000001, 0x0a000002, 40000, 80, kProtoTcp};
  syn.seq = 1000;
  syn.flags = kTcpSyn;
  k.handle_packet(make_tcp_packet(syn, Timestamp(0)), Timestamp(0));

  std::vector<std::uint8_t> payload(1460, 0x63);
  TcpSegmentSpec data;
  data.tuple = syn.tuple;
  data.flags = kTcpAck | kTcpPsh;
  data.payload = payload;
  Packet tmpl = make_tcp_packet(data, Timestamp(0));

  std::uint32_t seq = 1001;
  std::int64_t t = 0;
  for (auto _ : state) {
    Packet p = tmpl.with_flow(syn.tuple, seq, Timestamp(t));
    auto out = k.handle_packet(p, Timestamp(t));
    benchmark::DoNotOptimize(out);
    seq += 1460;
    t += 1000;
    // Periodically drain events so memory does not fill.
    if (!k.events(0).empty()) {
      auto ev = k.events(0).pop();
      k.release_chunk(ev);
    }
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * 1460);
}
BENCHMARK(BM_KernelHandlePacket);

void BM_FlowTableLookup(benchmark::State& state) {
  kernel::FlowTable table;
  std::vector<FiveTuple> tuples;
  for (std::uint32_t i = 0; i < 10000; ++i) {
    FiveTuple t{0x0a000000 + i, 0xc0a80001,
                static_cast<std::uint16_t>(1024 + (i % 50000)), 80,
                kProtoTcp};
    table.create(t, Timestamp(0), nullptr);
    tuples.push_back(t);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(tuples[i % tuples.size()]));
    ++i;
  }
}
BENCHMARK(BM_FlowTableLookup);

}  // namespace

BENCHMARK_MAIN();
