// Figure 11: analytic loss probability of high-priority packets (paper §7).
//
// M/M/1/N model of the memory region above base_threshold: the probability
// a high-priority packet is lost equals the full-buffer probability. Series
// for ρ = 0.1, 0.5, 0.9 over N = 1..200 packet slots.
#include <cstdio>

#include "analysis/queueing.hpp"
#include "bench/common/report.hpp"

using namespace scap;
using namespace scap::bench;

int main() {
  Table t("Fig 11 packet loss probability for high-priority packets vs N",
          {"N", "rho_0.1", "rho_0.5", "rho_0.9"});
  for (int n = 1; n <= 200; n += (n < 20 ? 1 : 5)) {
    t.row({static_cast<double>(n), analysis::mm1n_loss(0.1, n),
           analysis::mm1n_loss(0.5, n), analysis::mm1n_loss(0.9, n)});
  }
  t.print();

  // The §7 narrative checkpoints.
  auto slots_for = [](double rho, double target) {
    for (int n = 1; n <= 100000; ++n) {
      if (analysis::mm1n_loss(rho, n) < target) return n;
    }
    return -1;
  };
  std::printf("\n[§7] slots needed for loss < 1e-8: rho=0.1 -> %d (paper: "
              "<10), rho=0.5 -> %d (paper: ~20+), rho=0.9 -> %d (paper: "
              "~150)\n",
              slots_for(0.1, 1e-8), slots_for(0.5, 1e-8),
              slots_for(0.9, 1e-8));
  return 0;
}
