// Ablation: SCAP_TCP_STRICT vs SCAP_TCP_FAST (paper §2.3).
//
// Strict mode buffers out-of-order segments for exact in-order delivery;
// fast mode writes through holes and flags them. On an impaired trace
// (reordering + retransmissions) both reconstruct everything when nothing
// is lost; under capture loss, fast keeps delivering (flagging kErrHole)
// while strict stalls data behind holes until flush.
#include <cstdio>

#include "bench/common/driver.hpp"
#include "bench/common/workloads.hpp"

using namespace scap;
using namespace scap::bench;

namespace {

flowgen::Trace impaired_trace() {
  flowgen::WorkloadConfig cfg;
  cfg.flows = 1500;
  cfg.seed = 77;
  cfg.reorder_probability = 0.05;
  cfg.duplicate_probability = 0.03;
  cfg.patterns = vrt_patterns();
  cfg.plant_probability = 0.15;
  return flowgen::build_trace(cfg);
}

}  // namespace

int main() {
  const flowgen::Trace trace = impaired_trace();
  const int loops = 2;
  const double planted = static_cast<double>(trace.planted_matches) * loops;

  Table t("Ablation: reassembly mode on an impaired trace (5% reorder, 3% dup)",
          {"rate", "fast_matched_pct", "strict_matched_pct", "fast_drop_pct",
           "strict_drop_pct"});

  for (double rate : {0.5, 1.0, 2.0, 4.0}) {
    ScapRunOptions fast;
    fast.kernel.memory_size = 64ull << 20;
    fast.kernel.creation_events = false;
    fast.kernel.defaults.mode = kernel::ReassemblyMode::kTcpFast;
    fast.kernel.ppl.base_threshold = 0.5;
    fast.kernel.ppl.overload_cutoff = 16 * 1024;
    fast.automaton = &vrt_automaton();
    RunResult r_fast = run_scap(trace, rate, loops, fast);

    ScapRunOptions strict = fast;
    strict.kernel.defaults.mode = kernel::ReassemblyMode::kTcpStrict;
    RunResult r_strict = run_scap(trace, rate, loops, strict);

    auto pct = [&](const RunResult& r) {
      return planted > 0 ? 100.0 * static_cast<double>(r.matches) / planted
                         : 0.0;
    };
    t.row({rate, pct(r_fast), pct(r_strict), r_fast.drop_pct(),
           r_strict.drop_pct()});
  }
  t.print();
  std::printf("\nBoth modes reconstruct impaired-but-lossless streams; under "
              "capture loss fast mode degrades gracefully (kErrHole) while "
              "strict waits for holes that never fill.\n");
  return 0;
}
