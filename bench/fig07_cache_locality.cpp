// Figure 7: L2 cache misses per packet during pattern matching (paper
// §6.5.2).
//
// The paper measures PAPI hardware counters; we replay every datapath
// memory touch through a 6MB set-associative cache model in virtual-time
// order. Libnids/Snort scatter segments across the capture ring and copy
// them into per-stream buffers late; Scap writes each segment into its
// stream's buffer immediately and consumes it from there.
//
// Paper's headline (at 0.25 Gbit/s, nobody overloaded): Snort ~25 misses
// per packet, Libnids ~21, Scap ~10 — about half.
#include <cstdio>

#include "bench/common/driver.hpp"
#include "bench/common/workloads.hpp"

using namespace scap;
using namespace scap::bench;

int main() {
  const flowgen::Trace& trace = campus_trace();
  const int loops = 2;

  Table misses("Fig 7 L2 cache misses per packet vs rate (Gbit/s)",
               {"rate", "libnids", "snort", "scap"});

  for (double rate : {0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) {
    BaselineRunOptions nids;
    nids.kind = BaselineKind::kLibnids;
    nids.automaton = &vrt_automaton();
    nids.count_matches = false;
    nids.enable_cache_model = true;
    RunResult r_nids = run_baseline(trace, rate, loops, nids);

    BaselineRunOptions snort;
    snort.kind = BaselineKind::kStream5;
    snort.automaton = &vrt_automaton();
    snort.count_matches = false;
    snort.enable_cache_model = true;
    RunResult r_snort = run_baseline(trace, rate, loops, snort);

    ScapRunOptions scap;
    scap.kernel.memory_size = 64ull << 20;
    scap.kernel.creation_events = false;
    scap.automaton = &vrt_automaton();
    scap.count_matches = false;
    scap.enable_cache_model = true;
    RunResult r_scap = run_scap(trace, rate, loops, scap);

    misses.row({rate, r_nids.l2_misses_per_pkt, r_snort.l2_misses_per_pkt,
                r_scap.l2_misses_per_pkt});
  }
  misses.print();
  return 0;
}
