// Figure 10: parallel stream processing on multiple cores (paper §6.8).
//
// The pattern-matching application runs with 1-8 worker threads; RSS (with
// the symmetric key) spreads streams across cores and each worker is
// colocated with its core's kernel thread, which steals cycles — the reason
// the speedup is sublinear.
//
// Panels: (a) packet loss vs workers at 2/4/6 Gbit/s; (b) maximum loss-free
// rate vs workers. Paper: ~1 Gbit/s with one worker, ~5.5 Gbit/s with
// eight (a 5.5x speedup).
#include <cstdio>

#include "bench/common/driver.hpp"
#include "bench/common/workloads.hpp"

using namespace scap;
using namespace scap::bench;

namespace {

RunResult run_workers(const flowgen::Trace& trace, double rate, int workers,
                      int loops) {
  ScapRunOptions scap;
  scap.kernel.memory_size = 64ull << 20;
  scap.kernel.creation_events = false;
  scap.automaton = &vrt_automaton();
  scap.count_matches = false;
  scap.worker_threads = workers;
  return run_scap(trace, rate, loops, scap);
}

}  // namespace

int main() {
  const flowgen::Trace& trace = campus_trace();
  const int loops = 2;

  Table drops("Fig 10(a) packet loss (%) vs worker threads",
              {"workers", "rate2", "rate4", "rate6"});
  Table maxrate("Fig 10(b) max loss-free rate (Gbit/s) vs worker threads",
                {"workers", "gbps"});

  for (int w = 1; w <= 8; ++w) {
    std::printf("fig10: workers=%d...\n", w);
    RunResult r2 = run_workers(trace, 2.0, w, loops);
    RunResult r4 = run_workers(trace, 4.0, w, loops);
    RunResult r6 = run_workers(trace, 6.0, w, loops);
    drops.row({static_cast<double>(w), r2.drop_pct(), r4.drop_pct(),
               r6.drop_pct()});

    // Max loss-free rate: coarse upward sweep (<0.1% loss counts as free).
    double best = 0.0;
    for (double rate = 0.25; rate <= 8.01; rate += 0.25) {
      RunResult r = run_workers(trace, rate, w, loops);
      if (r.drop_pct() < 0.1) {
        best = rate;
      } else {
        break;
      }
    }
    maxrate.row({static_cast<double>(w), best});
  }
  drops.print();
  maxrate.print();
  return 0;
}
