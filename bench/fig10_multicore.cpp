// Figure 10: parallel stream processing on multiple cores (paper §6.8).
//
// The pattern-matching application runs with 1-8 worker threads; RSS (with
// the symmetric key) spreads streams across cores and each worker is
// colocated with its core's kernel thread, which steals cycles — the reason
// the speedup is sublinear.
//
// Panels: (a) packet loss vs workers at 2/4/6 Gbit/s; (b) maximum loss-free
// rate vs workers. Paper: ~1 Gbit/s with one worker, ~5.5 Gbit/s with
// eight (a 5.5x speedup).
//
// Panel (c) reconciles the cycle model against the implementation: the
// same campus trace is pushed through the real sharded datapath
// (KernelShards: per-core kernels behind SPSC rings, one wall-clock worker
// thread per shard) and its measured speedup is printed next to the
// model's. The two columns only agree on machines with enough hardware
// threads to actually run the workers in parallel — the hw_threads column
// says how trustworthy the measured one is.
#include <chrono>
#include <cstdio>
#include <thread>

#include "base/mutex.hpp"
#include "bench/common/driver.hpp"
#include "bench/common/workloads.hpp"
#include "kernel/shard.hpp"

using namespace scap;
using namespace scap::bench;

namespace {

RunResult run_workers(const flowgen::Trace& trace, double rate, int workers,
                      int loops) {
  ScapRunOptions scap;
  scap.kernel.memory_size = 64ull << 20;
  scap.kernel.creation_events = false;
  scap.automaton = &vrt_automaton();
  scap.count_matches = false;
  scap.worker_threads = workers;
  return run_scap(trace, rate, loops, scap);
}

/// Wall-clock packets/sec of the real sharded datapath on this trace:
/// single producer RSS-steering onto per-shard SPSC rings, `workers`
/// threads reassembling on private kernels (self-draining their events).
double measured_pps(const flowgen::Trace& trace, int workers) {
  kernel::KernelConfig cfg;
  cfg.memory_size = 64ull << 20;
  cfg.creation_events = false;
  kernel::KernelShards::Options opts;
  opts.ring_capacity = 4096;
  kernel::KernelShards shards(cfg, workers, opts);
  base::SerialGuard prod(shards.producer());
  shards.start({});

  auto push_all = [&] {
    for (const Packet& pkt : trace.packets) shards.submit(pkt);
    shards.flush();
  };
  push_all();  // warmup: slabs, event deques, ring steady state

  constexpr int kLoops = 2;
  const auto start = std::chrono::steady_clock::now();
  for (int loop = 0; loop < kLoops; ++loop) push_all();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  shards.stop(trace.packets.empty() ? Timestamp(0)
                                    : trace.packets.back().timestamp());
  return secs > 0
             ? static_cast<double>(trace.packets.size()) * kLoops / secs
             : 0.0;
}

}  // namespace

int main() {
  const flowgen::Trace& trace = campus_trace();
  const int loops = 2;

  Table drops("Fig 10(a) packet loss (%) vs worker threads",
              {"workers", "rate2", "rate4", "rate6"});
  Table maxrate("Fig 10(b) max loss-free rate (Gbit/s) vs worker threads",
                {"workers", "gbps"});
  Table reconcile(
      "Fig 10(c) model vs measured speedup (sharded datapath, wall clock)",
      {"workers", "model_x", "measured_x", "measured_pps", "hw_threads"});

  const double hw_threads =
      static_cast<double>(std::thread::hardware_concurrency());
  double model_base = 0.0;
  double measured_base = 0.0;
  for (int w = 1; w <= 8; ++w) {
    std::printf("fig10: workers=%d...\n", w);
    RunResult r2 = run_workers(trace, 2.0, w, loops);
    RunResult r4 = run_workers(trace, 4.0, w, loops);
    RunResult r6 = run_workers(trace, 6.0, w, loops);
    drops.row({static_cast<double>(w), r2.drop_pct(), r4.drop_pct(),
               r6.drop_pct()});

    // Max loss-free rate: coarse upward sweep (<0.1% loss counts as free).
    double best = 0.0;
    for (double rate = 0.25; rate <= 8.01; rate += 0.25) {
      RunResult r = run_workers(trace, rate, w, loops);
      if (r.drop_pct() < 0.1) {
        best = rate;
      } else {
        break;
      }
    }
    maxrate.row({static_cast<double>(w), best});

    const double pps = measured_pps(trace, w);
    if (w == 1) {
      model_base = best;
      measured_base = pps;
    }
    reconcile.row({static_cast<double>(w),
                   model_base > 0 ? best / model_base : 0.0,
                   measured_base > 0 ? pps / measured_base : 0.0, pps,
                   hw_threads});
  }
  drops.print();
  maxrate.print();
  reconcile.print();
  return 0;
}
