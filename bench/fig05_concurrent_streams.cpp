// Figure 5: scaling with the number of concurrent streams (paper §6.4).
//
// N interleaved TCP streams replay at a constant 1 Gbit/s; the question is
// who can still TRACK every stream. Libnids and Snort hit their static
// flow-table limits (~1M) and reject new connections; Scap allocates
// records dynamically and tracks everything.
//
// Scale notes vs the paper: streams carry 10 packets each instead of 100
// (pure multiplexing padding), the default sweep tops out at 10^6
// (SCAP_BENCH_SCALE=full adds 3x10^6), and inactivity timeouts are raised
// so that the target concurrency actually materializes inside our shorter
// replay window. None of this changes which system runs out of table space.
#include <cstdio>

#include "bench/common/driver.hpp"
#include "bench/common/workloads.hpp"
#include "flowgen/multiplex.hpp"

using namespace scap;
using namespace scap::bench;

namespace {

constexpr std::uint32_t kPktsPerStream = 10;
constexpr std::uint32_t kPayload = 1460;
const Duration kLongTimeout = Duration::from_sec(100000);

struct Point {
  double lost_pct;
  double cpu_pct;
  double softirq_pct;
};

Point run_scap_point(std::size_t n) {
  ScapRunOptions opt;
  opt.kernel.memory_size = 1ull << 30;
  opt.kernel.defaults.chunk_size = kPayload;  // keep host RAM bounded
  opt.kernel.defaults.inactivity_timeout = kLongTimeout;
  opt.kernel.creation_events = false;
  ScapPipeline pipe(opt);
  flowgen::ConcurrentPacketSource src(n, kPktsPerStream, kPayload, 1.0);
  while (auto pkt = src.next()) pipe.offer(*pkt);
  const std::uint64_t tracked_conns = pipe.kernel().stats().streams_created;
  RunResult r = pipe.finish();
  const double lost =
      100.0 * (1.0 - std::min(1.0, static_cast<double>(tracked_conns) /
                                       static_cast<double>(n)));
  return {lost, r.cpu_user_pct, r.softirq_pct};
}

Point run_baseline_point(std::size_t n, BaselineKind kind) {
  BaselineRunOptions opt;
  opt.kind = kind;
  opt.chunk_size = kPayload;
  opt.inactivity_timeout = kLongTimeout;
  BaselinePipeline pipe(opt);
  flowgen::ConcurrentPacketSource src(n, kPktsPerStream, kPayload, 1.0);
  while (auto pkt = src.next()) pipe.offer(*pkt);
  RunResult r = pipe.finish();
  const double lost =
      100.0 * (1.0 - std::min(1.0, static_cast<double>(r.streams_tracked) /
                                       static_cast<double>(n)));
  return {lost, r.cpu_user_pct, r.softirq_pct};
}

}  // namespace

int main() {
  std::vector<std::size_t> sweep = {10,      100,     1000,    10000,
                                    100000,  1000000, 2000000};
  if (full_scale()) sweep.push_back(5000000);

  Table lost("Fig 5(a) lost streams (%) vs concurrent streams @1Gbit/s",
             {"concurrent", "libnids", "snort", "scap"});
  Table cpu("Fig 5(b) application CPU utilization (%)",
            {"concurrent", "libnids", "snort", "scap"});
  Table softirq("Fig 5(c) software interrupt load (%)",
                {"concurrent", "libnids", "snort", "scap"});

  for (std::size_t n : sweep) {
    std::printf("fig05: n=%zu...\n", n);
    Point nids = run_baseline_point(n, BaselineKind::kLibnids);
    Point snort = run_baseline_point(n, BaselineKind::kStream5);
    Point scap = run_scap_point(n);
    const double dn = static_cast<double>(n);
    lost.row({dn, nids.lost_pct, snort.lost_pct, scap.lost_pct});
    cpu.row({dn, nids.cpu_pct, snort.cpu_pct, scap.cpu_pct});
    softirq.row({dn, nids.softirq_pct, snort.softirq_pct, scap.softirq_pct});
  }
  lost.print();
  cpu.print();
  softirq.print();
  return 0;
}
