// Ablation: WHERE the cutoff discard happens (the paper's core argument,
// §8.7 / Fig. 13): the same 10KB-per-stream policy implemented at
//   (a) user level   — modified Stream5: every packet crosses the ring
//   (b) kernel level — Scap: discarded before any copy to user space
//   (c) NIC level    — Scap + FDIR: discarded before main memory
// at 4 Gbit/s with the pattern-matching application.
#include <cstdio>

#include "bench/common/driver.hpp"
#include "bench/common/workloads.hpp"

using namespace scap;
using namespace scap::bench;

int main() {
  const flowgen::Trace& trace = campus_trace();
  const int loops = 3;
  const double rate = 4.0;
  const std::int64_t cutoff = 10 * 1024;

  Table t("Ablation: discard level for a 10KB cutoff @4Gbit/s",
          {"level", "drop_pct", "cpu_pct", "softirq_pct",
           "pkts_to_memory_pct"});

  // (a) user level.
  BaselineRunOptions snort;
  snort.kind = BaselineKind::kStream5;
  snort.cutoff_bytes = cutoff;
  snort.automaton = &vrt_automaton();
  snort.count_matches = false;
  RunResult a = run_baseline(trace, rate, loops, snort);
  t.row({0, a.drop_pct(), a.cpu_user_pct, a.softirq_pct, 100.0});

  // (b) kernel level.
  ScapRunOptions scap;
  scap.kernel.memory_size = 64ull << 20;
  scap.kernel.creation_events = false;
  scap.kernel.defaults.cutoff_bytes = cutoff;
  scap.automaton = &vrt_automaton();
  scap.count_matches = false;
  RunResult b = run_scap(trace, rate, loops, scap);
  t.row({1, b.drop_pct(), b.cpu_user_pct, b.softirq_pct, 100.0});

  // (c) NIC level.
  ScapRunOptions fdir = scap;
  fdir.use_fdir = true;
  RunResult c = run_scap(trace, rate, loops, fdir);
  const double to_mem =
      100.0 *
      static_cast<double>(c.pkts_offered - c.pkts_nic_filtered) /
      static_cast<double>(c.pkts_offered);
  t.row({2, c.drop_pct(), c.cpu_user_pct, c.softirq_pct, to_mem});

  t.print();
  std::printf("\nlevel: 0 = user (Stream5+cutoff), 1 = kernel (Scap), "
              "2 = NIC (Scap+FDIR)\n");
  return 0;
}
