// Figure 4: delivering reassembled streams to user level with no further
// processing (paper §6.3) — the cost of the extra user-level memory copy.
//
// Libnids and Snort Stream5 reassemble in user space after a ring copy;
// Scap reassembles in the kernel and delivers shared chunks. Paper's
// headline: Scap delivers all streams up to 5.5 Gbit/s; Libnids starts
// dropping at 2.5 Gbit/s, Snort at 2.75 Gbit/s; at 6 Gbit/s they lose ~80%.
#include <cstdio>

#include "bench/common/driver.hpp"
#include "bench/common/workloads.hpp"

using namespace scap;
using namespace scap::bench;

int main() {
  const flowgen::Trace& trace = campus_trace();
  std::printf("fig04_stream_delivery: trace %zu pkts, %.2f MB wire\n",
              trace.packets.size(),
              static_cast<double>(trace.total_wire_bytes) / 1e6);

  Table drops("Fig 4(a) packet loss (%) vs rate (Gbit/s)",
              {"rate", "libnids", "snort", "scap"});
  Table cpu("Fig 4(b) application CPU utilization (%)",
            {"rate", "libnids", "snort", "scap"});
  Table softirq("Fig 4(c) software interrupt load (%)",
                {"rate", "libnids", "snort", "scap"});

  const int loops = 4;
  for (double rate : rate_sweep()) {
    BaselineRunOptions nids;
    nids.kind = BaselineKind::kLibnids;
    RunResult r_nids = run_baseline(trace, rate, loops, nids);

    BaselineRunOptions snort;
    snort.kind = BaselineKind::kStream5;
    RunResult r_snort = run_baseline(trace, rate, loops, snort);

    ScapRunOptions scap;
    scap.kernel.memory_size = 1ull << 30;
    scap.kernel.creation_events = false;
    scap.worker_threads = 1;
    RunResult r_scap = run_scap(trace, rate, loops, scap);

    drops.row({rate, r_nids.drop_pct(), r_snort.drop_pct(),
               r_scap.drop_pct()});
    cpu.row({rate, r_nids.cpu_user_pct, r_snort.cpu_user_pct,
             r_scap.cpu_user_pct});
    softirq.row({rate, r_nids.softirq_pct, r_snort.softirq_pct,
                 r_scap.softirq_pct});
  }
  drops.print();
  cpu.print();
  softirq.print();
  return 0;
}
