// Figure 8: the stream-size cutoff sweep at a fixed 4 Gbit/s (paper §6.6).
//
// The same pattern-matching application runs with per-stream cutoffs from 0
// to 100 MB. The baselines implement the cutoff in USER SPACE (all packets
// still cross the ring first — the paper modified Stream5 for this), so
// their loss stays high regardless of cutoff; Scap discards past-cutoff
// packets in the kernel, and with FDIR filters even at the NIC.
//
// Paper's headline: at cutoff 10KB Scap drops nothing, CPU falls from ~97%
// to ~22%, ~97% of traffic is discarded early, and ~84% of matches are
// still found; baselines lose ~40% of packets even at cutoff 0.
#include <cstdio>

#include "bench/common/driver.hpp"
#include "bench/common/workloads.hpp"

using namespace scap;
using namespace scap::bench;

int main() {
  const flowgen::Trace& trace = campus_trace();
  const int loops = 3;
  const double kRate = 4.0;
  const double planted =
      static_cast<double>(trace.planted_matches) * loops;

  Table drops("Fig 8(a) packet loss (%) vs cutoff (bytes) @4Gbit/s",
              {"cutoff", "libnids", "snort", "scap", "scap_fdir"});
  Table cpu("Fig 8(b) application CPU utilization (%)",
            {"cutoff", "libnids", "snort", "scap", "scap_fdir"});
  Table softirq("Fig 8(c) software interrupt load (%)",
                {"cutoff", "libnids", "snort", "scap", "scap_fdir"});
  Table matched("Fig 8(extra) patterns matched (%) — §6.6 narrative",
                {"cutoff", "scap"});

  const std::int64_t cutoffs[] = {0,         100,        1024,
                                  10 * 1024, 100 * 1024, 1024 * 1024,
                                  10 * 1024 * 1024, 100 * 1024 * 1024};
  for (std::int64_t cutoff : cutoffs) {
    BaselineRunOptions nids;
    nids.kind = BaselineKind::kLibnids;
    nids.automaton = &vrt_automaton();
    nids.count_matches = false;
    nids.cutoff_bytes = cutoff;
    RunResult r_nids = run_baseline(trace, kRate, loops, nids);

    BaselineRunOptions snort = nids;
    snort.kind = BaselineKind::kStream5;
    RunResult r_snort = run_baseline(trace, kRate, loops, snort);

    ScapRunOptions scap;
    scap.kernel.memory_size = 64ull << 20;
    scap.kernel.creation_events = false;
    scap.kernel.defaults.cutoff_bytes = cutoff;
    scap.automaton = &vrt_automaton();
    RunResult r_scap = run_scap(trace, kRate, loops, scap);

    ScapRunOptions fdir = scap;
    fdir.use_fdir = true;
    fdir.count_matches = false;
    RunResult r_fdir = run_scap(trace, kRate, loops, fdir);

    const double c = static_cast<double>(cutoff);
    drops.row({c, r_nids.drop_pct(), r_snort.drop_pct(), r_scap.drop_pct(),
               r_fdir.drop_pct()});
    cpu.row({c, r_nids.cpu_user_pct, r_snort.cpu_user_pct,
             r_scap.cpu_user_pct, r_fdir.cpu_user_pct});
    softirq.row({c, r_nids.softirq_pct, r_snort.softirq_pct,
                 r_scap.softirq_pct, r_fdir.softirq_pct});
    matched.row({c, planted > 0 ? 100.0 * static_cast<double>(r_scap.matches) /
                                      planted
                                : 0.0});
  }
  drops.print();
  cpu.print();
  softirq.print();
  matched.print();
  return 0;
}
