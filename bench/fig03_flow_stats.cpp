// Figure 3: flow-based statistics export (paper §6.2).
//
// Four systems export per-flow statistics while the campus trace replays at
// 0.25-6 Gbit/s: YAF (96-byte snaplen, no reassembly), a Libnids-based
// exporter, Scap with a zero stream cutoff, and Scap with the cutoff
// offloaded to NIC FDIR filters (subzero copy). Panels: (a) packet loss,
// (b) application CPU utilization, (c) software-interrupt load.
//
// Paper's headline: YAF saturates ~4 Gbit/s, Libnids ~2-2.5 Gbit/s; Scap
// processes everything at 6 Gbit/s with <10% application CPU, and with
// FDIR only ~3% of packets ever reach main memory.
#include <cstdio>

#include "bench/common/driver.hpp"
#include "bench/common/workloads.hpp"

using namespace scap;
using namespace scap::bench;

namespace {

ScapRunOptions scap_options(bool fdir) {
  ScapRunOptions opt;
  opt.kernel.memory_size = 1ull << 30;
  opt.kernel.defaults.cutoff_bytes = 0;  // flow stats only: discard all data
  opt.kernel.creation_events = false;
  opt.use_fdir = fdir;
  opt.worker_threads = 1;
  return opt;
}

}  // namespace

int main() {
  const flowgen::Trace& trace = campus_trace();
  std::printf("fig03_flow_stats: trace %zu pkts, %.2f MB wire, %zu flows\n",
              trace.packets.size(),
              static_cast<double>(trace.total_wire_bytes) / 1e6,
              trace.flows.size());

  Table drops("Fig 3(a) packet loss (%) vs rate (Gbit/s)",
              {"rate", "yaf", "libnids", "scap", "scap_fdir"});
  Table cpu("Fig 3(b) application CPU utilization (%)",
            {"rate", "yaf", "libnids", "scap", "scap_fdir"});
  Table softirq("Fig 3(c) software interrupt load (%)",
                {"rate", "yaf", "libnids", "scap", "scap_fdir"});

  const int loops = 8;
  double fdir_mem_pct_at_6g = 100.0;
  for (double rate : rate_sweep()) {
    BaselineRunOptions yaf;
    yaf.kind = BaselineKind::kYaf;
    RunResult r_yaf = run_baseline(trace, rate, loops, yaf);

    BaselineRunOptions nids;
    nids.kind = BaselineKind::kLibnids;
    RunResult r_nids = run_baseline(trace, rate, loops, nids);

    RunResult r_scap = run_scap(trace, rate, loops, scap_options(false));
    RunResult r_fdir = run_scap(trace, rate, loops, scap_options(true));

    drops.row({rate, r_yaf.drop_pct(), r_nids.drop_pct(), r_scap.drop_pct(),
               r_fdir.drop_pct()});
    cpu.row({rate, r_yaf.cpu_user_pct, r_nids.cpu_user_pct,
             r_scap.cpu_user_pct, r_fdir.cpu_user_pct});
    softirq.row({rate, r_yaf.softirq_pct, r_nids.softirq_pct,
                 r_scap.softirq_pct, r_fdir.softirq_pct});
    if (rate == 6.0) {
      fdir_mem_pct_at_6g =
          100.0 *
          static_cast<double>(r_fdir.pkts_offered - r_fdir.pkts_nic_filtered) /
          static_cast<double>(r_fdir.pkts_offered);
    }
  }
  drops.print();
  cpu.print();
  softirq.print();
  std::printf(
      "\n[§6.2] Scap+FDIR brings %.1f%% of packets into main memory at 6 "
      "Gbit/s (paper: ~3%%)\n",
      fdir_mem_pct_at_6g);
  return 0;
}
