// Ablation: the PPL implementation vs its analytic model (bridges §2.2 and
// §7).
//
// A micro-simulation drives the actual Ppl admission logic with Poisson
// packet arrivals and exponential service (releases), sweeping N — the
// number of packet slots above base_threshold — and compares the measured
// high-priority loss with the M/M/1/N closed form of Fig. 11.
#include <cstdio>

#include "analysis/queueing.hpp"
#include "base/rng.hpp"
#include "bench/common/report.hpp"
#include "kernel/memory.hpp"
#include "kernel/ppl.hpp"

using namespace scap;
using namespace scap::bench;

namespace {

double simulate_loss(double rho, int n, std::uint64_t packets,
                     std::uint64_t seed) {
  // Memory: base slots below the threshold (always full in this regime)
  // plus n slots above it. Every packet occupies one slot.
  const std::uint64_t slot = 1000;
  const std::uint64_t base_slots = n;  // base region same size, kept full
  const std::uint64_t total_slots = base_slots + static_cast<std::uint64_t>(n);
  kernel::ChunkAllocator alloc(total_slots * slot);
  // Pin the base region full so only the region above threshold matters.
  for (std::uint64_t i = 0; i < base_slots; ++i) {
    (void)alloc.allocate(static_cast<std::uint32_t>(slot));
  }
  kernel::Ppl ppl({.base_threshold =
                       static_cast<double>(base_slots) /
                       static_cast<double>(total_slots),
                   .priority_levels = 1,
                   .overload_cutoff = -1});

  Rng rng(seed);
  double now = 0.0;
  // Exponential service, rate 1; arrivals rate rho.
  std::vector<double> release_times;
  std::uint64_t lost = 0;
  for (std::uint64_t i = 0; i < packets; ++i) {
    now += rng.exponential(1.0 / rho);
    // Service completions up to `now` free their slots (FIFO M/M/1).
    while (!release_times.empty() && release_times.front() <= now) {
      release_times.erase(release_times.begin());
      alloc.release(0, static_cast<std::uint32_t>(slot));
    }
    if (ppl.admit(alloc.used_fraction(), 0, 0) != kernel::PplVerdict::kAdmit ||
        !alloc.allocate(static_cast<std::uint32_t>(slot)).has_value()) {
      ++lost;
      continue;
    }
    const double start =
        release_times.empty() ? now : release_times.back();
    release_times.push_back(start + rng.exponential(1.0));
  }
  return static_cast<double>(lost) / static_cast<double>(packets);
}

}  // namespace

int main() {
  Table t("Ablation: PPL implementation vs M/M/1/N model (rho = 0.7)",
          {"N", "simulated_loss", "analytic_loss"});
  const double rho = 0.7;
  for (int n : {1, 2, 4, 8, 12, 16, 24}) {
    const double sim = simulate_loss(rho, n, 400000, 42);
    const double ana = analysis::mm1n_loss(rho, n);
    t.row({static_cast<double>(n), sim, ana});
  }
  t.print();
  std::printf("\nThe implementation's admission logic tracks the Markov "
              "model within sampling noise, validating the §7 analysis "
              "against the code that ships.\n");
  return 0;
}
