#!/usr/bin/env python3
"""Perf-regression gate for the fast-path throughput harness.

Runs bench/throughput with a fixed seed, then compares each workload's
packets/sec against the checked-in baseline JSON. Fails (exit 1) when any
workload regresses by more than --tolerance (default 10%).

Wired as the optional `perf`-labeled ctest (cmake -DSCAP_PERF_TESTS=ON);
tier-1 test runs never execute it. The baseline was recorded on the machine
that produced EXPERIMENTS.md's numbers — regenerate it on your own hardware
before trusting absolute comparisons:

    build/bench/throughput --out=bench/baseline/BENCH_throughput.json
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def load_workloads(path):
    with open(path) as f:
        doc = json.load(f)
    return {w["name"]: w for w in doc["workloads"]}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", required=True, help="path to the throughput binary")
    ap.add_argument("--baseline", required=True, help="checked-in baseline JSON")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional pps regression (default 0.10)")
    ap.add_argument("--mc-tolerance", type=float, default=0.25,
                    help="tolerance for *_mc_w* workloads (default 0.25; "
                         "oversubscribed worker scheduling is noisier than "
                         "the single-threaded workloads)")
    ap.add_argument("--min-mc-scaling", type=float, default=3.0,
                    help="required flow_lookup_mc speedup at 4 workers over "
                         "1 worker (default 3.0); checked only when the "
                         "machine has >= 5 hardware threads (producer + 4 "
                         "workers), otherwise reported and skipped")
    ap.add_argument("--seed", type=int, default=2013)
    args = ap.parse_args()

    if not os.path.exists(args.baseline):
        print(f"SKIP: no baseline at {args.baseline}; record one with "
              f"{args.bench} --out={args.baseline}")
        return 0

    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "BENCH_throughput.json")
        proc = subprocess.run(
            [args.bench, f"--out={out}", f"--seed={args.seed}"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        sys.stdout.write(proc.stdout)
        if proc.returncode != 0:
            print(f"FAIL: throughput harness exited {proc.returncode}")
            return 1
        current = load_workloads(out)

    baseline = load_workloads(args.baseline)
    failed = False
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            print(f"FAIL: workload '{name}' missing from current run")
            failed = True
            continue
        tolerance = args.mc_tolerance if "_mc_w" in name else args.tolerance
        base_pps, cur_pps = base["pps"], cur["pps"]
        ratio = cur_pps / base_pps if base_pps > 0 else float("inf")
        verdict = "ok"
        if ratio < 1.0 - tolerance:
            verdict = "REGRESSION"
            failed = True
        print(f"{name}: baseline {base_pps:,.0f} pps -> current "
              f"{cur_pps:,.0f} pps ({ratio:.2%}, tol {tolerance:.0%}) "
              f"{verdict}")

    # Multi-core scaling gate: the sharded flow-lookup path must actually
    # scale when the hardware can run producer + 4 workers concurrently.
    # On smaller machines the speedup is physically unobtainable (workers
    # time-slice one core), so the gate reports and skips.
    w1 = current.get("flow_lookup_mc_w1")
    w4 = current.get("flow_lookup_mc_w4")
    if w1 is not None and w4 is not None and w1["pps"] > 0:
        speedup = w4["pps"] / w1["pps"]
        cores = os.cpu_count() or 1
        if cores >= 5:
            if speedup < args.min_mc_scaling:
                print(f"FAIL: flow_lookup_mc 4-worker speedup {speedup:.2f}x "
                      f"< required {args.min_mc_scaling:.2f}x "
                      f"({cores} cpus)")
                failed = True
            else:
                print(f"flow_lookup_mc scaling: {speedup:.2f}x at 4 workers "
                      f"(>= {args.min_mc_scaling:.2f}x) ok")
        else:
            print(f"SKIP multicore scaling gate: {cores} hardware thread(s) "
                  f"(need >= 5); measured {speedup:.2f}x at 4 workers")

    if failed:
        print(f"FAIL: perf gate vs {args.baseline}")
        return 1
    print("PASS: no workload regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
