#!/usr/bin/env python3
"""Perf-regression gate for the fast-path throughput harness.

Runs bench/throughput with a fixed seed, then compares each workload's
packets/sec against the checked-in baseline JSON. Fails (exit 1) when any
workload regresses by more than --tolerance (default 10%).

Wired as the optional `perf`-labeled ctest (cmake -DSCAP_PERF_TESTS=ON);
tier-1 test runs never execute it. The baseline was recorded on the machine
that produced EXPERIMENTS.md's numbers — regenerate it on your own hardware
before trusting absolute comparisons:

    build/bench/throughput --out=bench/baseline/BENCH_throughput.json
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def load_workloads(path):
    with open(path) as f:
        doc = json.load(f)
    return {w["name"]: w for w in doc["workloads"]}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", required=True, help="path to the throughput binary")
    ap.add_argument("--baseline", required=True, help="checked-in baseline JSON")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional pps regression (default 0.10)")
    ap.add_argument("--seed", type=int, default=2013)
    args = ap.parse_args()

    if not os.path.exists(args.baseline):
        print(f"SKIP: no baseline at {args.baseline}; record one with "
              f"{args.bench} --out={args.baseline}")
        return 0

    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "BENCH_throughput.json")
        proc = subprocess.run(
            [args.bench, f"--out={out}", f"--seed={args.seed}"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        sys.stdout.write(proc.stdout)
        if proc.returncode != 0:
            print(f"FAIL: throughput harness exited {proc.returncode}")
            return 1
        current = load_workloads(out)

    baseline = load_workloads(args.baseline)
    failed = False
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            print(f"FAIL: workload '{name}' missing from current run")
            failed = True
            continue
        base_pps, cur_pps = base["pps"], cur["pps"]
        ratio = cur_pps / base_pps if base_pps > 0 else float("inf")
        verdict = "ok"
        if ratio < 1.0 - args.tolerance:
            verdict = "REGRESSION"
            failed = True
        print(f"{name}: baseline {base_pps:,.0f} pps -> current "
              f"{cur_pps:,.0f} pps ({ratio:.2%}) {verdict}")

    if failed:
        print(f"FAIL: pps regressed more than {args.tolerance:.0%} "
              f"vs {args.baseline}")
        return 1
    print("PASS: no workload regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
