// Figure 6: pattern matching under increasing load (paper §6.5).
//
// All systems run the same Aho-Corasick automaton (2,120 VRT-like web-attack
// patterns) over reassembled streams, single worker thread, no cutoff.
// Panels: (a) packet loss, (b) % of planted patterns successfully matched,
// (c) lost streams. "scap_pkts" is Scap delivering individual packets
// (§6.5.3) — same loss profile, slightly fewer matches (patterns spanning
// packet boundaries are missed).
//
// Paper's headline: baselines handle ~0.75 Gbit/s, Scap ~1 Gbit/s per
// worker; at 6 Gbit/s the baselines match <10% of patterns and lose streams
// proportionally to packet loss, while Scap still matches ~50% and loses
// only ~14% of streams.
#include <cstdio>

#include "bench/common/driver.hpp"
#include "bench/common/workloads.hpp"

using namespace scap;
using namespace scap::bench;

int main() {
  const flowgen::Trace& trace = campus_trace();
  const int loops = 3;
  const double planted =
      static_cast<double>(trace.planted_matches) * loops;
  const double total_streams =
      static_cast<double>(directional_streams_with_data(trace)) * loops;
  std::printf("fig06: trace %zu pkts, %llu planted matches/loop, %d loops\n",
              trace.packets.size(),
              static_cast<unsigned long long>(trace.planted_matches), loops);

  Table drops("Fig 6(a) packet loss (%) vs rate (Gbit/s)",
              {"rate", "libnids", "snort", "scap", "scap_pkts"});
  Table matched("Fig 6(b) patterns successfully matched (%)",
                {"rate", "libnids", "snort", "scap", "scap_pkts"});
  Table lost("Fig 6(c) lost streams (%)",
             {"rate", "libnids", "snort", "scap", "scap_pkts"});

  for (double rate : rate_sweep()) {
    BaselineRunOptions nids;
    nids.kind = BaselineKind::kLibnids;
    nids.automaton = &vrt_automaton();
    RunResult r_nids = run_baseline(trace, rate, loops, nids);

    BaselineRunOptions snort;
    snort.kind = BaselineKind::kStream5;
    snort.automaton = &vrt_automaton();
    RunResult r_snort = run_baseline(trace, rate, loops, snort);

    ScapRunOptions scap;
    scap.kernel.memory_size = 64ull << 20;  // scaled with the replay window
    scap.kernel.creation_events = false;
    // PPL defaults (§2.2): above base_threshold, shed bytes beyond the
    // overload cutoff first — this is what "gives priority to new and
    // small streams" and keeps stream heads (where the signatures live)
    // intact under overload (§6.5.1).
    scap.kernel.ppl.base_threshold = 0.5;
    scap.kernel.ppl.overload_cutoff = 16 * 1024;
    scap.automaton = &vrt_automaton();
    scap.worker_threads = 1;
    RunResult r_scap = run_scap(trace, rate, loops, scap);

    ScapRunOptions scap_pkts = scap;
    scap_pkts.kernel.need_pkts = true;
    scap_pkts.deliver_packets = true;
    RunResult r_pkts = run_scap(trace, rate, loops, scap_pkts);

    auto matched_pct = [&](const RunResult& r) {
      return planted > 0 ? 100.0 * static_cast<double>(r.matches) / planted
                         : 0.0;
    };
    auto lost_pct = [&](const RunResult& r) {
      return total_streams > 0
                 ? 100.0 * (1.0 - std::min(1.0,
                                           static_cast<double>(
                                               r.streams_with_data) /
                                               total_streams))
                 : 0.0;
    };
    drops.row({rate, r_nids.drop_pct(), r_snort.drop_pct(), r_scap.drop_pct(),
               r_pkts.drop_pct()});
    matched.row({rate, matched_pct(r_nids), matched_pct(r_snort),
                 matched_pct(r_scap), matched_pct(r_pkts)});
    lost.row({rate, lost_pct(r_nids), lost_pct(r_snort), lost_pct(r_scap),
              lost_pct(r_pkts)});
  }
  drops.print();
  matched.print();
  lost.print();
  return 0;
}
